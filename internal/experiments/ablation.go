package experiments

import (
	"context"
	"io"

	"selsync/internal/cluster"
	"selsync/internal/simnet"
	"selsync/internal/train"
)

// AblationTopology measures the design choice §III-E leaves open: pricing
// synchronization rounds through the central PS vs a bandwidth-optimal
// ring allreduce. Convergence is identical (the aggregation math does not
// change); simulated time shifts with the collective, and SelSync's
// advantage compounds on top of whichever transport is used.
func AblationTopology(scale Scale, w io.Writer) *Table {
	p := ParamsFor(scale)
	t := &Table{
		Title:   "Ablation: PS vs ring-allreduce synchronization transport",
		Columns: []string{"model", "method", "topology", "best metric", "simtime(s)", "vs PS"},
	}
	models := []string{"resnet", "vgg"}
	methods := []string{"BSP", "SelSync"}
	topos := []cluster.Topology{cluster.PS, cluster.Ring}
	// One job per model × method × topology (index order matches the
	// nested loops the serial version ran), sharing one read-only
	// workload per model.
	wls := make([]Workload, len(models))
	for i, model := range models {
		wls[i] = SetupWorkload(model, p, 131)
	}
	results := make([]*train.Result, len(models)*len(methods)*len(topos))
	parallelDo(len(results), func(ctx context.Context, j int) {
		wl := wls[j/(len(methods)*len(topos))]
		method := methods[j/len(topos)%len(methods)]
		topo := topos[j%len(topos)]
		cfg := BaseConfig(wl, p, 131)
		cfg.Topology = topo
		if method == "BSP" {
			results[j] = runPolicy(ctx, cfg, train.BSPPolicy{})
		} else {
			results[j] = runPolicy(ctx, cfg, train.SelSyncPolicy{Delta: wl.DeltaLow, Mode: cluster.ParamAgg})
		}
	})
	j := 0
	for i := range models {
		name := wls[i].Factory.Spec.Name
		for _, method := range methods {
			var psTime float64
			for _, topo := range topos {
				res := results[j]
				j++
				rel := "1.00x"
				if topo == cluster.PS {
					psTime = res.SimTime
				} else if res.SimTime > 0 {
					rel = fmtF(psTime/res.SimTime, 2) + "x"
				}
				t.AddRow(name, method, topo.String(),
					fmtF(res.BestMetric, 2), fmtF(res.SimTime, 1), rel)
			}
		}
	}
	t.Fprint(w)
	return t
}

// AblationStraggler measures systems heterogeneity (paper §II-A): one
// worker runs 4× slower than the rest. BSP's barrier inherits the
// straggler's pace in full; SSP sails past it (its founding motivation);
// SelSync pays the barrier only on its synchronous fraction of steps, so
// its slowdown is LSSR-scaled.
func AblationStraggler(scale Scale, w io.Writer) *Table {
	p := ParamsFor(scale)
	t := &Table{
		Title:   "Ablation: 4x straggler (systems heterogeneity)",
		Columns: []string{"method", "homogeneous(s)", "straggler(s)", "slowdown"},
	}
	methods := []string{"BSP", "SSP(s=8)", "SelSync"}
	// One job per method × homogeneous/straggler fleet over one shared
	// read-only workload.
	wl := SetupWorkload("resnet", p, 137)
	results := make([]*train.Result, 2*len(methods))
	parallelDo(len(results), func(ctx context.Context, j int) {
		cfg := BaseConfig(wl, p, 137)
		if j%2 == 1 {
			cfg.Device = func(id int) *simnet.Device {
				d := simnet.NewV100(137 ^ uint64(id))
				if id == 0 {
					d.Straggle = 4
				}
				return d
			}
		}
		switch j / 2 {
		case 0:
			results[j] = runPolicy(ctx, cfg, train.BSPPolicy{})
		case 1:
			results[j] = runPolicy(ctx, cfg, &train.SSPPolicy{Staleness: 8})
		case 2:
			results[j] = runPolicy(ctx, cfg, train.SelSyncPolicy{Delta: wl.DeltaLow, Mode: cluster.ParamAgg})
		}
	})
	for i, method := range methods {
		homog, hetero := results[2*i], results[2*i+1]
		slowdown := hetero.SimTime / homog.SimTime
		t.AddRow(method, fmtF(homog.SimTime, 1), fmtF(hetero.SimTime, 1), fmtF(slowdown, 2)+"x")
	}
	t.Fprint(w)
	return t
}
