package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"selsync/internal/cluster"
	"selsync/internal/comm"
	"selsync/internal/simnet"
	"selsync/internal/train"
)

// The scenario suite: registered failure/straggler experiments that assert
// the robustness guarantees of the fault-tolerant fabric instead of
// reproducing a paper figure. Each runner prints PASS lines on success and
// returns an error (the pass/fail assertion) when a guarantee is violated,
// so `selsync-bench -run scenario-...` doubles as an acceptance check.

// scenarioRanks runs fn SPMD across procs in-process ranks, each over its
// own loopback endpoint (decorated by wrap when non-nil) with a full mesh
// on top — the experiments-package counterpart of the commtest harness,
// which is out of reach here because it requires a testing.TB. A rank that
// panics fails the scenario; ranks that merely error must surface that
// through T.
func scenarioRanks[T any](procs, workers int, opTimeout time.Duration,
	wrap func(rank int, ep comm.Endpoint) comm.Endpoint,
	fn func(rank int, fabric comm.Fabric) T) ([]T, error) {
	eps := comm.NewLoopbackEndpoints(procs)
	results := make([]T, procs)
	panics := make([]error, procs)
	var wg sync.WaitGroup
	for r := 0; r < procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r] = fmt.Errorf("rank %d panicked: %v", r, p)
				}
			}()
			ep := eps[r]
			if wrap != nil {
				ep = wrap(r, ep)
			}
			mesh, err := comm.NewMesh(ep, workers)
			if err != nil {
				panics[r] = fmt.Errorf("rank %d mesh: %w", r, err)
				return
			}
			if opTimeout > 0 {
				mesh.SetOpTimeout(opTimeout)
			}
			defer mesh.Close()
			results[r] = fn(r, mesh)
		}(r)
	}
	wg.Wait()
	for _, err := range panics {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// scenarioRun is one rank's outcome in a faulted scenario.
type scenarioRun struct {
	res *train.Result
	err error
}

// ScenarioCrash is the crash/restart scenario: a 4-rank SelSync run loses
// one rank mid-flight. Every rank must fail with a typed comm error and a
// partial-but-valid Result, and a gang restart of all ranks from the newest
// auto-checkpoint step every rank persisted must reproduce the
// uninterrupted run's Result.Digest() exactly.
func ScenarioCrash(scale Scale, w io.Writer) error {
	const procs, crashRank, seed = 4, 2, 223
	p := ParamsFor(scale)
	wl := SetupWorkload("vgg", p, seed)
	policy := train.SelSyncPolicy{Delta: wl.DeltaLow, Mode: cluster.ParamAgg}
	mkCfg := func() train.Config { return BaseConfig(wl, p, seed) }
	autoEvery := max(1, p.EvalEvery/2)

	want, err := train.NewJob(mkCfg(), policy).Run(context.Background())
	if err != nil {
		return fmt.Errorf("scenario-crash: uninterrupted run: %w", err)
	}

	// Probe a quarter-length clean multi-rank run to learn how many frames
	// the doomed rank sends per step (SelSync is lock-step, so the count is
	// deterministic), then schedule the crash at the full run's midpoint.
	probe, err := scenarioRanks(procs, p.Workers, 0, nil, func(rank int, fabric comm.Fabric) int64 {
		cfg := mkCfg()
		cfg.MaxSteps = max(1, p.MaxSteps/4)
		cfg.Fabric = fabric
		if _, err := train.NewJob(cfg, policy).Run(context.Background()); err != nil {
			panic(err)
		}
		return fabric.(*comm.Mesh).Endpoint().NetStats().FramesSent
	})
	if err != nil {
		return fmt.Errorf("scenario-crash: probe run: %w", err)
	}
	crashFrame := int(probe[crashRank]) * 2
	if crashFrame < 1 {
		return fmt.Errorf("scenario-crash: implausible probe: rank %d sent %d frames", crashRank, probe[crashRank])
	}

	// The faulted run: every rank auto-checkpoints into its own sink, rank 2
	// crashes at the scheduled frame count.
	sinks := make([]map[int]*train.Checkpoint, procs)
	for r := range sinks {
		sinks[r] = make(map[int]*train.Checkpoint)
	}
	crashed, err := scenarioRanks(procs, p.Workers, 10*time.Second,
		func(rank int, ep comm.Endpoint) comm.Endpoint {
			if rank != crashRank {
				return ep
			}
			return comm.WithFaults(ep, comm.FaultPlan{CrashAtFrame: crashFrame})
		},
		func(rank int, fabric comm.Fabric) scenarioRun {
			cfg := mkCfg()
			cfg.Fabric = fabric
			var out scenarioRun
			out.res, out.err = train.NewJob(cfg, policy,
				train.WithAutoCheckpoint(autoEvery, func(step int, ck *train.Checkpoint) error {
					if !ck.Dirty {
						sinks[rank][step] = ck
					}
					return nil
				})).Run(context.Background())
			return out
		})
	if err != nil {
		return fmt.Errorf("scenario-crash: faulted run: %w", err)
	}
	for rank, got := range crashed {
		if got.err == nil {
			return fmt.Errorf("scenario-crash: FAIL: rank %d completed despite the crash at frame %d", rank, crashFrame)
		}
		var pe *comm.PeerError
		if !errors.As(got.err, &pe) {
			return fmt.Errorf("scenario-crash: FAIL: rank %d error is not a typed *comm.PeerError: %v", rank, got.err)
		}
		if rank == crashRank && !errors.Is(got.err, comm.ErrCrashed) {
			return fmt.Errorf("scenario-crash: FAIL: crashed rank error does not wrap ErrCrashed: %v", got.err)
		}
		if got.res == nil {
			return fmt.Errorf("scenario-crash: FAIL: rank %d returned no partial Result", rank)
		}
	}

	// Gang-restart line: the newest step every rank persisted.
	common := -1
	for step := range sinks[0] {
		ok := true
		for r := 1; r < procs; r++ {
			if _, have := sinks[r][step]; !have {
				ok = false
				break
			}
		}
		if ok && step > common {
			common = step
		}
	}
	if common < autoEvery {
		return fmt.Errorf("scenario-crash: FAIL: no common auto-checkpoint step across ranks (crash frame %d)", crashFrame)
	}
	fmt.Fprintf(w, "scenario-crash: rank %d crashed at frame %d; typed errors and partial Results on all %d ranks\n",
		crashRank, crashFrame, procs)

	// Gang restart — including the crashed rank — from the common step.
	resumed, err := scenarioRanks(procs, p.Workers, 0, nil, func(rank int, fabric comm.Fabric) scenarioRun {
		cfg := mkCfg()
		cfg.Fabric = fabric
		var out scenarioRun
		out.res, out.err = train.NewJob(cfg, policy, train.WithResume(sinks[rank][common])).Run(context.Background())
		return out
	})
	if err != nil {
		return fmt.Errorf("scenario-crash: recovery run: %w", err)
	}
	for rank, got := range resumed {
		if got.err != nil {
			return fmt.Errorf("scenario-crash: FAIL: rank %d recovery run: %w", rank, got.err)
		}
		if got.res.Digest() != want.Digest() {
			return fmt.Errorf("scenario-crash: FAIL: rank %d recovered digest %s != uninterrupted %s (resumed from step %d)",
				rank, got.res.Digest(), want.Digest(), common)
		}
	}
	fmt.Fprintf(w, "scenario-crash: gang restart from step %d reproduced digest %s: PASS\n", common, want.Digest())
	return nil
}

// chaosDigestScenario runs the shared body of the partition and flaky-link
// scenarios: a 2-rank run under the plan must complete and stay
// bit-identical to the clean run (the injector models a reliable transport:
// timing changes, bytes do not), and the plan must demonstrably have fired
// (checked by the caller against the aggregated FaultStats).
func chaosDigestScenario(name string, scale Scale, w io.Writer, seed uint64, plan comm.FaultPlan) (comm.FaultStats, error) {
	const procs = 2
	p := ParamsFor(scale)
	wl := SetupWorkload("vgg", p, seed)
	policy := train.SelSyncPolicy{Delta: wl.DeltaLow, Mode: cluster.ParamAgg}
	mkCfg := func() train.Config { return BaseConfig(wl, p, seed) }

	want, err := train.NewJob(mkCfg(), policy).Run(context.Background())
	if err != nil {
		return comm.FaultStats{}, fmt.Errorf("%s: clean run: %w", name, err)
	}

	faulted := make([]*comm.FaultyEndpoint, procs)
	results, err := scenarioRanks(procs, p.Workers, 0,
		func(rank int, ep comm.Endpoint) comm.Endpoint {
			fe := comm.WithFaults(ep, plan)
			faulted[rank] = fe
			return fe
		},
		func(rank int, fabric comm.Fabric) scenarioRun {
			cfg := mkCfg()
			cfg.Fabric = fabric
			var out scenarioRun
			out.res, out.err = train.NewJob(cfg, policy).Run(context.Background())
			return out
		})
	if err != nil {
		return comm.FaultStats{}, fmt.Errorf("%s: chaos run: %w", name, err)
	}
	var total comm.FaultStats
	for _, fe := range faulted {
		st := fe.FaultStats()
		total.Delays += st.Delays
		total.Drops += st.Drops
		total.Dups += st.Dups
		total.Stalls += st.Stalls
	}
	for rank, got := range results {
		if got.err != nil {
			return total, fmt.Errorf("%s: FAIL: rank %d did not survive the chaos plan: %w", name, rank, got.err)
		}
		if got.res.Digest() != want.Digest() {
			return total, fmt.Errorf("%s: FAIL: rank %d digest %s diverged from clean %s under chaos",
				name, rank, got.res.Digest(), want.Digest())
		}
	}
	fmt.Fprintf(w, "%s: run completed under chaos, digest %s bit-identical to clean: PASS\n", name, want.Digest())
	return total, nil
}

// ScenarioPartition is the transient-partition scenario: every link stalls
// through a mid-run frame window. The run must ride out the outage and stay
// bit-identical to the clean run.
func ScenarioPartition(scale Scale, w io.Writer) error {
	stats, err := chaosDigestScenario("scenario-partition", scale, w, 227, comm.FaultPlan{
		Seed: 1,
		Links: []comm.LinkFault{{
			From: -1, To: -1,
			Partition:      comm.Window{Start: 20, End: 60},
			PartitionStall: 200 * time.Microsecond,
		}},
	})
	if err != nil {
		return err
	}
	if stats.Stalls == 0 {
		return fmt.Errorf("scenario-partition: FAIL: the partition window never fired")
	}
	fmt.Fprintf(w, "scenario-partition: %d frames stalled in the partition window\n", stats.Stalls)
	return nil
}

// ScenarioFlaky is the lossy-link scenario: every link sees modeled drops
// (charged their retransmit delay) and duplicates plus jittered delays. The
// reliable transport under the injector must deliver every byte anyway.
func ScenarioFlaky(scale Scale, w io.Writer) error {
	stats, err := chaosDigestScenario("scenario-flaky", scale, w, 233, comm.FaultPlan{
		Seed: 2,
		Links: []comm.LinkFault{{
			From: -1, To: -1,
			Delay:           comm.DelayDist{Min: time.Microsecond, Max: 20 * time.Microsecond},
			Drop:            0.05,
			RetransmitDelay: 50 * time.Microsecond,
			Dup:             0.05,
		}},
	})
	if err != nil {
		return err
	}
	if stats.Drops == 0 || stats.Dups == 0 || stats.Delays == 0 {
		return fmt.Errorf("scenario-flaky: FAIL: flaky plan fired incompletely: %+v", stats)
	}
	fmt.Fprintf(w, "scenario-flaky: %d drops, %d dups, %d delays injected\n", stats.Drops, stats.Dups, stats.Delays)
	return nil
}

// ScenarioChurn is the elastic-membership scenario: a 4-rank SelSync run
// executes a scripted leave/join plan — rank 2 departs at the quarter
// mark (its workers adopted by rank 0, collectives re-formed over the
// survivors) and hot-rejoins at the midpoint via rank 0's live state
// transfer. The degraded run must stay bit-identical to the loopback run
// under the same plan (the determinism contract), the survivors must
// observe both view changes, and pushing departures past the quorum must
// fail with the typed comm.ErrQuorumLost.
func ScenarioChurn(scale Scale, w io.Writer) error {
	const procs, churnRank, seed = 4, 2, 239
	p := ParamsFor(scale)
	wl := SetupWorkload("vgg", p, seed)
	policy := func() train.SyncPolicy {
		return train.SelSyncPolicy{Delta: wl.DeltaLow, Mode: cluster.ParamAgg}
	}
	leaveAt, joinAt := p.MaxSteps/4, p.MaxSteps/2
	plan := fmt.Sprintf("leave=%d@%d;join=%d@%d;procs=%d", churnRank, leaveAt, churnRank, joinAt, procs)
	mkCfg := func() train.Config {
		cfg := BaseConfig(wl, p, seed)
		cfg.Membership = plan
		return cfg
	}

	want, err := train.NewJob(mkCfg(), policy()).Run(context.Background())
	if err != nil {
		return fmt.Errorf("scenario-churn: loopback degraded run: %w", err)
	}

	views := make([][]train.ViewChangeEvent, procs)
	results, err := scenarioRanks(procs, p.Workers, 0, nil, func(rank int, fabric comm.Fabric) scenarioRun {
		cfg := mkCfg()
		cfg.Fabric = fabric
		opts := []train.Option{train.WithObserver(train.ObserverFunc(func(e train.Event) {
			if ve, ok := e.(train.ViewChangeEvent); ok {
				views[rank] = append(views[rank], ve)
			}
		}))}
		if rank == churnRank {
			opts = append(opts, train.WithRejoin())
		}
		var out scenarioRun
		out.res, out.err = train.NewJob(cfg, policy(), opts...).Run(context.Background())
		return out
	})
	if err != nil {
		return fmt.Errorf("scenario-churn: churn run: %w", err)
	}
	for rank, got := range results {
		if got.err != nil {
			return fmt.Errorf("scenario-churn: FAIL: rank %d did not survive the churn plan: %w", rank, got.err)
		}
		if got.res.Digest() != want.Digest() {
			return fmt.Errorf("scenario-churn: FAIL: rank %d digest %s diverged from the loopback run's %s under churn",
				rank, got.res.Digest(), want.Digest())
		}
	}
	for _, rank := range []int{0, 1, 3} {
		vs := views[rank]
		if len(vs) != 2 || vs[0].Join || !vs[1].Join || vs[0].Rank != churnRank || vs[1].Rank != churnRank {
			return fmt.Errorf("scenario-churn: FAIL: rank %d saw view changes %+v, want rank-%d leave then join", rank, vs, churnRank)
		}
	}
	fmt.Fprintf(w, "scenario-churn: rank %d left at step %d and hot-rejoined at step %d; digest %s bit-identical to loopback: PASS\n",
		churnRank, leaveAt, joinAt, want.Digest())

	// The quorum guard: three planned departures from four ranks under the
	// default quorum (⌈4/2⌉+1 = 3) must fail typed, not deadlock.
	cfg := BaseConfig(wl, p, seed)
	cfg.Membership = fmt.Sprintf("leave=1@%d;leave=2@%d;procs=%d;quorum=3", leaveAt, joinAt, procs)
	if _, err := train.NewJob(cfg, policy()).Run(context.Background()); !errors.Is(err, comm.ErrQuorumLost) {
		return fmt.Errorf("scenario-churn: FAIL: quorum breach returned %v, want comm.ErrQuorumLost", err)
	}
	fmt.Fprintln(w, "scenario-churn: quorum breach fails with typed comm.ErrQuorumLost: PASS")
	return nil
}

// ScenarioStraggler is the adversarial-skew scenario: one worker runs 4×
// slower than the fleet. The straggler must visibly cost both methods
// (slowdown > 1), and SelSync — which pays the barrier only on its
// synchronous fraction of steps — must keep its absolute simulated time
// strictly below BSP's on the degraded fleet. (The *relative* slowdown
// ratio is not the right assertion: SelSync's homogeneous baseline is so
// much faster that the same absolute straggler tax inflates its ratio.)
func ScenarioStraggler(scale Scale, w io.Writer) error {
	const seed = 229
	p := ParamsFor(scale)
	wl := SetupWorkload("resnet", p, seed)
	// BSP and SelSync, each on a homogeneous fleet and a straggler fleet.
	results := make([]*train.Result, 4)
	parallelDo(len(results), func(ctx context.Context, j int) {
		cfg := BaseConfig(wl, p, seed)
		if j%2 == 1 {
			cfg.Device = func(id int) *simnet.Device {
				d := simnet.NewV100(seed ^ uint64(id))
				if id == 0 {
					d.Straggle = 4
				}
				return d
			}
		}
		if j/2 == 0 {
			results[j] = runPolicy(ctx, cfg, train.BSPPolicy{})
		} else {
			results[j] = runPolicy(ctx, cfg, train.SelSyncPolicy{Delta: wl.DeltaLow, Mode: cluster.ParamAgg})
		}
	})
	bspSlow := results[1].SimTime / results[0].SimTime
	selSlow := results[3].SimTime / results[2].SimTime
	fmt.Fprintf(w, "scenario-straggler: 4x straggler slowdown: BSP %.2fx, SelSync %.2fx\n", bspSlow, selSlow)
	fmt.Fprintf(w, "scenario-straggler: degraded-fleet simtime: BSP %.1fs, SelSync %.1fs\n",
		results[1].SimTime, results[3].SimTime)
	if bspSlow <= 1 || selSlow <= 1 {
		return fmt.Errorf("scenario-straggler: FAIL: the straggler cost nothing (BSP %.2fx, SelSync %.2fx)", bspSlow, selSlow)
	}
	if results[3].SimTime >= results[1].SimTime {
		return fmt.Errorf("scenario-straggler: FAIL: SelSync (%.1fs) not faster than BSP (%.1fs) on the degraded fleet",
			results[3].SimTime, results[1].SimTime)
	}
	fmt.Fprintln(w, "scenario-straggler: SelSync stays ahead of BSP under adversarial skew: PASS")
	return nil
}
