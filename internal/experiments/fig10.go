package experiments

import (
	"context"
	"io"

	"selsync/internal/cluster"
	"selsync/internal/train"
)

// Fig10 regenerates Fig. 10: SelSync convergence under gradient vs
// parameter aggregation (SelDP, δ≈0.25). PA bounds replica divergence at
// every sync and wins where the learning-rate schedule decays; AlexNet, the
// fixed-lr workload, comes out similar under both — the paper's
// observation.
func Fig10(scale Scale, w io.Writer) (*Figure, *Table) {
	p := ParamsFor(scale)
	fig := &Figure{
		Title:  "Fig 10: SelSync gradient vs parameter aggregation (SelDP, δ≈0.25)",
		XLabel: "training step", YLabel: "test metric",
	}
	summary := &Table{
		Title:   "Fig 10 summary: best metric per aggregation mode",
		Columns: []string{"model", "ParamAgg", "GradAgg", "PA at least as good?"},
	}
	models := AllWorkloads()
	// One job per model × aggregation mode (even index PA, odd GA),
	// sharing one read-only workload per model.
	wls := make([]Workload, len(models))
	for i, model := range models {
		wls[i] = SetupWorkload(model, p, 101)
	}
	results := make([]*train.Result, 2*len(models))
	parallelDo(len(results), func(ctx context.Context, j int) {
		wl := wls[j/2]
		mode := cluster.ParamAgg
		if j%2 == 1 {
			mode = cluster.GradAgg
		}
		cfg := BaseConfig(wl, p, 101)
		results[j] = runPolicy(ctx, cfg, train.SelSyncPolicy{Delta: wl.DeltaMid, Mode: mode})
	})
	for i := range models {
		pa, ga := results[2*i], results[2*i+1]
		name := wls[i].Factory.Spec.Name
		px, py := historyXY(pa)
		fig.Add(name+" PA", px, py)
		gx, gy := historyXY(ga)
		fig.Add(name+" GA", gx, gy)
		// "at least as good" with a small tolerance: equal-ish counts.
		tol := 0.5
		asGood := pa.BestMetric >= ga.BestMetric-tol
		if pa.Perplexity {
			asGood = pa.BestMetric <= ga.BestMetric+tol
		}
		summary.AddRow(name, fmtF(pa.BestMetric, 2), fmtF(ga.BestMetric, 2), boolCell(asGood))
	}
	fig.Fprint(w)
	summary.Fprint(w)
	return fig, summary
}
