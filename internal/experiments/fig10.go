package experiments

import (
	"io"

	"selsync/internal/cluster"
	"selsync/internal/train"
)

// Fig10 regenerates Fig. 10: SelSync convergence under gradient vs
// parameter aggregation (SelDP, δ≈0.25). PA bounds replica divergence at
// every sync and wins where the learning-rate schedule decays; AlexNet, the
// fixed-lr workload, comes out similar under both — the paper's
// observation.
func Fig10(scale Scale, w io.Writer) (*Figure, *Table) {
	p := ParamsFor(scale)
	fig := &Figure{
		Title:  "Fig 10: SelSync gradient vs parameter aggregation (SelDP, δ≈0.25)",
		XLabel: "training step", YLabel: "test metric",
	}
	summary := &Table{
		Title:   "Fig 10 summary: best metric per aggregation mode",
		Columns: []string{"model", "ParamAgg", "GradAgg", "PA at least as good?"},
	}
	for _, model := range AllWorkloads() {
		wl := SetupWorkload(model, p, 101)
		base := BaseConfig(wl, p, 101)
		pa := train.RunSelSync(base, train.SelSyncOptions{Delta: wl.DeltaMid, Mode: cluster.ParamAgg})
		ga := train.RunSelSync(base, train.SelSyncOptions{Delta: wl.DeltaMid, Mode: cluster.GradAgg})

		name := wl.Factory.Spec.Name
		px, py := historyXY(pa)
		fig.Add(name+" PA", px, py)
		gx, gy := historyXY(ga)
		fig.Add(name+" GA", gx, gy)
		// "at least as good" with a small tolerance: equal-ish counts.
		tol := 0.5
		asGood := pa.BestMetric >= ga.BestMetric-tol
		if pa.Perplexity {
			asGood = pa.BestMetric <= ga.BestMetric+tol
		}
		summary.AddRow(name, fmtF(pa.BestMetric, 2), fmtF(ga.BestMetric, 2), boolCell(asGood))
	}
	fig.Fprint(w)
	summary.Fprint(w)
	return fig, summary
}
