package experiments

import (
	"context"
	"io"

	"selsync/internal/data"
	"selsync/internal/gradstat"
	"selsync/internal/nn"
	"selsync/internal/tensor"
)

// Fig4 regenerates Fig. 4: the largest Hessian eigenvalue and the
// first-order gradient variance tracked across training steps for the
// residual and plain-convolutional models. The two series move together,
// which is the paper's justification for using the cheap first-order proxy
// inside SelSync.
func Fig4(scale Scale, w io.Writer) *Figure {
	p := ParamsFor(scale)
	fig := &Figure{
		Title:  "Fig 4: Hessian top eigenvalue vs gradient variance over training",
		XLabel: "training step", YLabel: "eigenvalue / variance (scaled)",
	}
	probeEvery := max(1, p.MaxSteps/12)
	models := []string{"resnet", "vgg"}
	type curves struct {
		name          string
		xs, eigs, vrs []float64
	}
	results := make([]curves, len(models))
	parallelDo(len(models), func(_ context.Context, i int) {
		wl := SetupWorkload(models[i], p, 41)
		net := wl.Factory.New(41)
		optimizer := wl.Opt(net.Params())
		sampler := data.NewSampler(seqIndices(wl.Data.Train.N()), wl.Batch)

		// Fixed probe batch for curvature measurements.
		probeX, probeLabels := wl.Data.Train.Batch(seqIndices(minInt(64, wl.Data.Train.N())))

		c := curves{name: wl.Factory.Spec.Name}
		grad := tensor.NewVector(nn.ParamCount(net.Params()))
		for step := 0; step < p.MaxSteps; step++ {
			x, labels := wl.Data.Train.Batch(sampler.Next())
			net.ComputeGradients(x, labels)
			if step%probeEvery == 0 {
				nn.FlattenGrads(net.Params(), grad)
				variance := gradstat.GradVariance(grad)
				eig := gradstat.TopHessianEigenvalue(net, probeX, probeLabels, gradstat.HessianEigOptions{
					Iters: 5, Seed: uint64(step) + 7,
				})
				// The Hessian probe overwrote the gradients; recompute
				// the step's own gradient before updating.
				net.ComputeGradients(x, labels)
				c.xs = append(c.xs, float64(step))
				c.eigs = append(c.eigs, eig)
				c.vrs = append(c.vrs, variance)
			}
			optimizer.Step(wl.Schedule.LR(step))
		}
		results[i] = c
	})
	for _, c := range results {
		fig.Add(c.name+" hessian-eig", c.xs, c.eigs)
		fig.Add(c.name+" grad-variance", c.xs, c.vrs)
	}
	fig.Fprint(w)
	return fig
}

func seqIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
