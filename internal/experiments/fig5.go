package experiments

import (
	"context"
	"io"

	"selsync/internal/train"
)

// Fig5 regenerates Fig. 5: the relative gradient change Δ(g_i) tracked
// through a BSP run alongside the test-metric curve, for all four
// workloads. Sharp metric movement co-occurs with elevated Δ(g_i) (learning
// rate decays show as spikes), and both flatten as convergence plateaus.
func Fig5(scale Scale, w io.Writer) *Figure {
	p := ParamsFor(scale)
	fig := &Figure{
		Title:  "Fig 5: Δ(g_i) vs test metric across BSP training",
		XLabel: "training step", YLabel: "Δ(g_i) / test metric",
	}
	models := AllWorkloads()
	results := make([]*train.Result, len(models))
	names := make([]string, len(models))
	parallelDo(len(models), func(ctx context.Context, i int) {
		wl := SetupWorkload(models[i], p, 51)
		cfg := BaseConfig(wl, p, 51)
		cfg.TrackDeltas = true
		names[i] = wl.Factory.Spec.Name
		results[i] = runPolicy(ctx, cfg, train.BSPPolicy{})
	})
	for i, res := range results {
		dx := make([]float64, len(res.Deltas))
		for j := range dx {
			dx[j] = float64(j + 1)
		}
		fig.Add(names[i]+" delta", dx, res.Deltas)
		mx, my := historyXY(res)
		fig.Add(names[i]+" metric", mx, my)
	}
	fig.Fprint(w)
	return fig
}
