package experiments

import (
	"context"
	"io"

	"selsync/internal/data"
	"selsync/internal/nn"
	"selsync/internal/simnet"
	"selsync/internal/train"
)

// Fig1a regenerates Fig. 1a: relative PS-training throughput (samples/s
// normalized to one worker) as the cluster grows 1→16, per zoo model. It is
// a pure cost-model experiment: throughput(N) = N·b/(t_c + t_s(N)).
func Fig1a(scale Scale, w io.Writer) *Figure {
	net := simnet.DefaultNetwork()
	dev := &simnet.Device{Name: "V100", FlopsEff: 8e11, Straggle: 1} // jitter-free
	sizes := []int{1, 2, 4, 8, 16}
	batches := map[string]int{"resnet": 32, "vgg": 32, "alexnet": 128, "transformer": 20}

	fig := &Figure{
		Title:  "Fig 1a: relative throughput vs cluster size (PS, 5 Gbps NICs)",
		XLabel: "workers", YLabel: "throughput relative to 1 worker",
	}
	for _, name := range AllWorkloads() {
		spec := nn.Zoo()[name].Spec
		b := batches[name]
		tc := dev.ComputeTime(simnet.StepFlops(spec.FlopsPerSample, b))
		single := float64(b) / tc
		xs := make([]float64, 0, len(sizes))
		ys := make([]float64, 0, len(sizes))
		for _, n := range sizes {
			var t float64
			if n == 1 {
				t = tc
			} else {
				t = tc + net.PSSync(spec.WireBytes, n)
			}
			xs = append(xs, float64(n))
			ys = append(ys, float64(n*b)/t/single)
		}
		fig.Add(spec.Name, xs, ys)
	}
	fig.Fprint(w)
	return fig
}

// Fig1b regenerates Fig. 1b: FedAvg test accuracy on IID vs non-IID data
// (1 label/worker for the 10-class task, 10 labels/worker for the
// 100-class task), C=1 and E=0.1 on 10 workers as in the paper.
func Fig1b(scale Scale, w io.Writer) *Figure {
	p := ParamsFor(scale)
	p.Workers = 10 // the paper's Fig. 1b cluster
	fig := &Figure{
		Title:  "Fig 1b: FedAvg under IID vs non-IID data (C=1, E=0.1, 10 workers)",
		XLabel: "training step", YLabel: "test accuracy (%)",
	}
	cases := []struct {
		model  string
		labels int // labels per worker in the non-IID split
	}{
		{"resnet", 1},
		{"vgg", 10},
	}
	// Four independent runs (case × IID/non-IID) over one shared
	// read-only workload per case.
	wls := make([]Workload, len(cases))
	for i, c := range cases {
		wls[i] = SetupWorkload(c.model, p, 11)
	}
	results := make([]*train.Result, 2*len(cases))
	parallelDo(len(results), func(ctx context.Context, j int) {
		c, wl := cases[j/2], wls[j/2]
		cfg := BaseConfig(wl, p, 11)
		if j%2 == 0 {
			cfg.Scheme = data.DefDP
		} else {
			cfg.NonIID = &train.NonIID{LabelsPerWorker: c.labels}
		}
		results[j] = runPolicy(ctx, cfg, &train.FedAvgPolicy{C: 1, E: NonIIDSyncFactor(p, p.Workers, wl.Batch)})
	})
	for i := range cases {
		name := wls[i].Factory.Spec.Name
		ix, iy := historyXY(results[2*i])
		fig.Add(name+" IID", ix, iy)
		nx, ny := historyXY(results[2*i+1])
		fig.Add(name+" NonIID", nx, ny)
	}
	fig.Fprint(w)
	return fig
}

// historyXY converts a result's evaluation history to x/y slices.
func historyXY(r *train.Result) ([]float64, []float64) {
	xs := make([]float64, len(r.History))
	ys := make([]float64, len(r.History))
	for i, pt := range r.History {
		xs[i] = float64(pt.Step)
		ys[i] = pt.Metric
	}
	return xs, ys
}
