package experiments

import (
	"context"
	"io"

	"selsync/internal/cluster"
	"selsync/internal/train"
)

// SwitchCompare runs the Sync-Switch-style comparison the unified training
// engine makes possible (Li et al., 2021; the old per-method loops could
// not host it): a hybrid policy that trains BSP for the first quarter of
// the step budget and then switches to SelSync(δ_low), against pure BSP and
// pure SelSync, on the residual and plain-convolutional workloads. The
// hybrid's warmup phase pays full synchronization while gradients move
// fast, then hands over to significance-gated synchronization — it should
// hold BSP-like accuracy while recovering most of SelSync's simulated-time
// win. The summary table reports where each run's synchronization budget
// went and the simulated speedup over BSP.
func SwitchCompare(scale Scale, w io.Writer) (*Figure, *Table) {
	p := ParamsFor(scale)
	warmup := p.MaxSteps / 4
	fig := &Figure{
		Title:  "Switch: BSP warmup → SelSync(δ_low) vs the pure policies",
		XLabel: "simulated seconds", YLabel: "test metric",
	}
	summary := &Table{
		Title:   "Switch summary: sync budget and simulated speedup vs BSP",
		Columns: []string{"model", "policy", "LSSR", "sync", "local", "best", "simtime(s)", "vs BSP"},
	}

	models := []string{"resnet", "vgg"}
	labels := []string{"bsp", "selsync", "bsp→selsync"}
	policyFor := func(wl Workload, kind int) train.SyncPolicy {
		sel := train.SelSyncPolicy{Delta: wl.DeltaLow, Mode: cluster.ParamAgg}
		switch kind {
		case 0:
			return train.BSPPolicy{}
		case 1:
			return sel
		default:
			return &train.SwitchPolicy{From: train.BSPPolicy{}, To: sel, AtStep: warmup}
		}
	}

	wls := make([]Workload, len(models))
	for i, model := range models {
		wls[i] = SetupWorkload(model, p, 97)
	}
	results := make([]*train.Result, len(models)*len(labels))
	parallelDo(len(results), func(ctx context.Context, j int) {
		wl := wls[j/len(labels)]
		cfg := BaseConfig(wl, p, 97)
		results[j] = runPolicy(ctx, cfg, policyFor(wl, j%len(labels)))
	})

	for i := range models {
		name := wls[i].Factory.Spec.Name
		bsp := results[i*len(labels)]
		for k, label := range labels {
			res := results[i*len(labels)+k]
			xs := make([]float64, len(res.History))
			ys := make([]float64, len(res.History))
			for n, pt := range res.History {
				xs[n] = pt.SimTime
				ys[n] = pt.Metric
			}
			fig.Add(name+" "+label, xs, ys)
			summary.AddRow(name, label, fmtF(res.LSSR, 3),
				fmtI(res.SyncSteps), fmtI(res.LocalSteps),
				fmtF(res.BestMetric, 2), fmtF(res.SimTime, 1),
				fmtF(bsp.SimTime/res.SimTime, 2)+"x")
		}
	}
	fig.Fprint(w)
	summary.Fprint(w)
	return fig, summary
}
