package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAWarmupIsMean(t *testing.T) {
	e := NewEWMA(0.16, 4)
	xs := []float64{1, 2, 3, 4}
	var sum float64
	for i, x := range xs {
		got := e.Observe(x)
		sum += x
		want := sum / float64(i+1)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("warmup step %d: got %v want %v", i, got, want)
		}
	}
	if !e.Warm() {
		t.Fatal("should be warm after window samples")
	}
}

func TestEWMARecurrenceAfterWarmup(t *testing.T) {
	e := NewEWMA(0.5, 2)
	e.Observe(2) // warmup mean = 2
	e.Observe(4) // warmup mean = 3
	got := e.Observe(7)
	want := 0.5*3 + 0.5*7
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestEWMANoWindowFirstSample(t *testing.T) {
	// With no warm-up window the first sample initializes the average so
	// the estimate never drags through zero.
	e := NewEWMA(0.3, 0)
	if got := e.Observe(10); got != 10 {
		t.Fatalf("got %v want 10", got)
	}
	if got := e.Observe(0); math.Abs(got-7) > 1e-12 {
		t.Fatalf("second sample: got %v want 7", got)
	}
}

func TestEWMAAlphaClamping(t *testing.T) {
	if e := NewEWMA(-1, 0); e.Alpha <= 0 || e.Alpha > 1 {
		t.Fatalf("alpha not clamped: %v", e.Alpha)
	}
	if e := NewEWMA(5, -3); e.Alpha != 1 || e.Window != 0 {
		t.Fatalf("clamping failed: %+v", e)
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(0.5, 2)
	e.Observe(5)
	e.Reset()
	if e.Count() != 0 || e.Value() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

// Property: EWMA of a constant stream equals the constant.
func TestQuickEWMAConstantStream(t *testing.T) {
	f := func(c float64, w uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		c = math.Mod(c, 1e6)
		e := NewEWMA(0.25, int(w%10))
		for i := 0; i < 50; i++ {
			e.Observe(c)
		}
		return math.Abs(e.Value()-c) <= 1e-9*math.Max(1, math.Abs(c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: EWMA output stays within the observed min/max envelope.
func TestQuickEWMABounded(t *testing.T) {
	f := func(xs []float64) bool {
		e := NewEWMA(0.3, 5)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			x = math.Mod(x, 1e6)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			v := e.Observe(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningWelford(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Observe(x)
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("mean: got %v", r.Mean())
	}
	if math.Abs(r.Variance()-4) > 1e-12 {
		t.Fatalf("variance: got %v", r.Variance())
	}
	if math.Abs(r.Std()-2) > 1e-12 {
		t.Fatalf("std: got %v", r.Std())
	}
	if r.Count() != len(xs) {
		t.Fatalf("count: got %d", r.Count())
	}
}

func TestRunningEmptyAndReset(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.SampleVariance() != 0 {
		t.Fatal("empty Running should report zeros")
	}
	r.Observe(3)
	if r.Variance() != 0 {
		t.Fatal("single sample variance must be 0")
	}
	r.Reset()
	if r.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

// Property: Welford matches the two-pass formula.
func TestQuickRunningMatchesTwoPass(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e4))
		}
		if len(xs) < 2 {
			return true
		}
		var r Running
		var sum float64
		for _, x := range xs {
			r.Observe(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			d := x - mean
			m2 += d * d
		}
		wantVar := m2 / float64(len(xs))
		scale := math.Max(1, wantVar)
		return math.Abs(r.Mean()-mean) < 1e-8*math.Max(1, math.Abs(mean)) &&
			math.Abs(r.Variance()-wantVar) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedVariance(t *testing.T) {
	w := NewWindowedVariance(3)
	if w.Variance() != 0 {
		t.Fatal("empty window variance must be 0")
	}
	w.Observe(1)
	w.Observe(2)
	w.Observe(3)
	// mean 2, variance 2/3
	if math.Abs(w.Variance()-2.0/3.0) > 1e-12 {
		t.Fatalf("variance: got %v", w.Variance())
	}
	w.Observe(10) // evicts 1; mean of buffer {10,2,3} is 5
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean after eviction: got %v", w.Mean())
	}
	if w.Count() != 3 {
		t.Fatalf("count: got %d", w.Count())
	}
}

func TestWindowedVarianceMinSize(t *testing.T) {
	w := NewWindowedVariance(0)
	w.Observe(1)
	w.Observe(5)
	if w.Count() != 2 {
		t.Fatalf("window should clamp to 2, count=%d", w.Count())
	}
}
