// Package stats provides the streaming statistics used by the SelSync
// reproduction: exponentially weighted moving averages (the smoothing the
// paper applies to gradient norms before computing Δ(g_i)), Welford running
// moments, Gaussian kernel density estimation (Figs. 3 and 11), and simple
// histogram / percentile summaries for the experiment reports.
package stats

import (
	"fmt"
	"math"
)

// EWMA is an exponentially weighted moving average with an optional warm-up
// window. The paper smooths per-iteration gradient norms with "EWMA with a
// window-size of 25 iterations and a smoothing factor of N/100"; this type
// implements exactly that combination: until Window observations have been
// seen the estimate is the plain arithmetic mean of the observations so far
// (a warm-up that avoids the cold-start bias of exponential smoothing), and
// afterwards it is the standard recurrence
//
//	s_i = (1-α)·s_{i-1} + α·x_i.
type EWMA struct {
	Alpha  float64 // smoothing factor in (0, 1]
	Window int     // warm-up length; 0 means no warm-up

	count int
	sum   float64 // running sum during warm-up
	value float64
}

// NewEWMA returns an EWMA with the given smoothing factor and warm-up
// window. Alpha is clamped into (0, 1].
func NewEWMA(alpha float64, window int) *EWMA {
	if alpha <= 0 {
		alpha = 1e-3
	}
	if alpha > 1 {
		alpha = 1
	}
	if window < 0 {
		window = 0
	}
	return &EWMA{Alpha: alpha, Window: window}
}

// Observe feeds one sample and returns the updated smoothed value.
func (e *EWMA) Observe(x float64) float64 {
	e.count++
	if e.count <= e.Window {
		e.sum += x
		e.value = e.sum / float64(e.count)
		return e.value
	}
	if e.count == 1 {
		e.value = x
		return e.value
	}
	e.value = (1-e.Alpha)*e.value + e.Alpha*x
	return e.value
}

// Value returns the current smoothed value (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Count returns how many samples have been observed.
func (e *EWMA) Count() int { return e.count }

// Warm reports whether the warm-up window has been filled.
func (e *EWMA) Warm() bool { return e.count >= e.Window }

// Reset clears all state, keeping the configuration.
func (e *EWMA) Reset() {
	e.count = 0
	e.sum = 0
	e.value = 0
}

// EWMAState is a serializable snapshot of an EWMA's mutable state (the
// configuration — Alpha and Window — is reconstructed by the owner, not
// checkpointed).
type EWMAState struct {
	Count int
	Sum   float64
	Value float64
}

// State snapshots the mutable state for checkpointing.
func (e *EWMA) State() EWMAState {
	return EWMAState{Count: e.count, Sum: e.sum, Value: e.value}
}

// Restore overwrites the mutable state from a snapshot; the stream
// continues bit-identically from the captured point.
func (e *EWMA) Restore(s EWMAState) {
	e.count, e.sum, e.value = s.Count, s.Sum, s.Value
}

// Running tracks mean and variance incrementally using Welford's algorithm,
// which is numerically stable for the long streams produced by training
// loops (tens of thousands of gradient-norm observations).
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Observe feeds one sample.
func (r *Running) Observe(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Count returns the number of samples observed.
func (r *Running) Count() int { return r.n }

// Mean returns the running mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (0 with fewer than 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the Bessel-corrected variance (0 with fewer than 2
// samples).
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Variance()) }

// Reset clears all state.
func (r *Running) Reset() { *r = Running{} }

// WindowedVariance maintains the variance of the most recent Window samples
// using a ring buffer. The gradient-significance tracker uses it to expose
// the "gradient variance over a window" signal from paper §II-E / Fig. 4.
type WindowedVariance struct {
	buf  []float64
	next int
	full bool
}

// NewWindowedVariance returns a tracker over the given window size
// (minimum 2).
func NewWindowedVariance(window int) *WindowedVariance {
	if window < 2 {
		window = 2
	}
	return &WindowedVariance{buf: make([]float64, window)}
}

// Observe inserts a sample, evicting the oldest when full.
func (w *WindowedVariance) Observe(x float64) {
	w.buf[w.next] = x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// Count returns the number of live samples in the window.
func (w *WindowedVariance) Count() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Mean returns the mean over the live window.
func (w *WindowedVariance) Mean() float64 {
	n := w.Count()
	if n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		s += w.buf[i]
	}
	return s / float64(n)
}

// Variance returns the population variance over the live window.
func (w *WindowedVariance) Variance() float64 {
	n := w.Count()
	if n < 2 {
		return 0
	}
	m := w.Mean()
	var s float64
	for i := 0; i < n; i++ {
		d := w.buf[i] - m
		s += d * d
	}
	return s / float64(n)
}

// WindowedVarianceState is a serializable snapshot of a WindowedVariance
// ring buffer.
type WindowedVarianceState struct {
	Buf  []float64
	Next int
	Full bool
}

// State snapshots the ring buffer for checkpointing. The returned buffer
// is a copy.
func (w *WindowedVariance) State() WindowedVarianceState {
	return WindowedVarianceState{
		Buf:  append([]float64(nil), w.buf...),
		Next: w.next,
		Full: w.full,
	}
}

// Restore overwrites the ring buffer from a snapshot. The snapshot's
// window size must match the receiver's.
func (w *WindowedVariance) Restore(s WindowedVarianceState) error {
	if len(s.Buf) != len(w.buf) {
		return fmt.Errorf("stats: windowed-variance snapshot has window %d, tracker has %d", len(s.Buf), len(w.buf))
	}
	copy(w.buf, s.Buf)
	w.next, w.full = s.Next, s.Full
	return nil
}
