package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKDEIntegratesToOne(t *testing.T) {
	samples := []float64{-1, -0.5, 0, 0.5, 1, 0.2, -0.2, 0.7}
	k := NewKDE(samples)
	// Trapezoid rule over a wide grid should integrate to ~1.
	xs, ys := k.Grid(-10, 10, 2001)
	var area float64
	for i := 1; i < len(xs); i++ {
		area += 0.5 * (ys[i] + ys[i-1]) * (xs[i] - xs[i-1])
	}
	if math.Abs(area-1) > 0.01 {
		t.Fatalf("KDE should integrate to 1, got %v", area)
	}
}

func TestKDEPeaksNearMode(t *testing.T) {
	samples := make([]float64, 0, 200)
	for i := 0; i < 200; i++ {
		samples = append(samples, 5+0.1*math.Sin(float64(i)))
	}
	k := NewKDE(samples)
	if k.Density(5) <= k.Density(8) {
		t.Fatal("density at the mode should exceed density far away")
	}
}

func TestKDEEmptyAndDegenerate(t *testing.T) {
	if NewKDE(nil).Density(0) != 0 {
		t.Fatal("empty KDE density should be 0")
	}
	k := NewKDE([]float64{3, 3, 3})
	if k.Density(3) <= 0 {
		t.Fatal("degenerate KDE should still be positive at the atom")
	}
}

func TestKDEExplicitBandwidth(t *testing.T) {
	k := NewKDEWithBandwidth([]float64{0}, 2)
	if k.Bandwidth() != 2 {
		t.Fatalf("bandwidth: got %v", k.Bandwidth())
	}
	// Standard normal kernel scaled by h=2 at x=0: 1/(2·sqrt(2π)).
	want := 1 / (2 * math.Sqrt(2*math.Pi))
	if math.Abs(k.Density(0)-want) > 1e-12 {
		t.Fatalf("density: got %v want %v", k.Density(0), want)
	}
	if k2 := NewKDEWithBandwidth([]float64{0, 1}, -1); k2.Bandwidth() <= 0 {
		t.Fatal("non-positive bandwidth must fall back to Silverman")
	}
}

func TestKDEGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiny grid")
		}
	}()
	NewKDE([]float64{1}).Grid(0, 1, 1)
}

func TestAutoGridCoversSamples(t *testing.T) {
	k := NewKDE([]float64{-2, 0, 3})
	xs, ys := k.AutoGrid(50)
	if len(xs) != 50 || len(ys) != 50 {
		t.Fatal("AutoGrid sizes wrong")
	}
	if xs[0] >= -2 || xs[len(xs)-1] <= 3 {
		t.Fatalf("grid [%v, %v] must pad beyond sample range", xs[0], xs[len(xs)-1])
	}
}

// Property: density is non-negative everywhere and symmetric for symmetric
// samples.
func TestQuickKDENonNegative(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		if math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		samples := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			samples = append(samples, math.Mod(x, 100))
		}
		k := NewKDE(samples)
		return k.Density(math.Mod(probe, 100)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKDESymmetry(t *testing.T) {
	k := NewKDE([]float64{-3, -1, 1, 3})
	for _, x := range []float64{0.5, 1.5, 2.5} {
		if math.Abs(k.Density(x)-k.Density(-x)) > 1e-12 {
			t.Fatalf("symmetric samples should give symmetric density at %v", x)
		}
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Percentile(%v): got %v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Interpolated case: P62.5 of [1..5] = 1 + 0.625*4 = 3.5
	if got := Percentile(xs, 62.5); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("interpolated percentile: got %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Fatal("Percentile must not mutate input")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 9.9, -4, 15} {
		h.Observe(x)
	}
	if h.Total != 6 {
		t.Fatalf("total: %d", h.Total)
	}
	// -4 clamps into bin 0, 15 clamps into bin 4.
	if h.Counts[0] != 3 { // 0.5, 1, -4  (1.0 falls in bin 0? 1.0*5/10=0.5 -> bin 0)
		t.Fatalf("bin0: %d (%v)", h.Counts[0], h.Counts)
	}
	if h.Counts[4] != 2 { // 9.9 and clamped 15
		t.Fatalf("bin4: %d (%v)", h.Counts[4], h.Counts)
	}
	if math.Abs(h.Fraction(0)-0.5) > 1e-12 {
		t.Fatalf("fraction: %v", h.Fraction(0))
	}
	if math.Abs(h.BinCenter(0)-1) > 1e-12 {
		t.Fatalf("bin center: %v", h.BinCenter(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
