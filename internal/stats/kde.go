package stats

import (
	"math"
	"sort"
)

// KDE is a one-dimensional Gaussian kernel density estimate. The paper uses
// KDE plots of per-layer gradients (Fig. 3) and of model weights under the
// three aggregation regimes (Fig. 11); the experiment harness evaluates this
// estimator over a fixed grid to regenerate those series.
type KDE struct {
	samples   []float64
	bandwidth float64
}

// NewKDE builds an estimator over the samples with Silverman's
// rule-of-thumb bandwidth. The sample slice is copied.
func NewKDE(samples []float64) *KDE {
	c := make([]float64, len(samples))
	copy(c, samples)
	return &KDE{samples: c, bandwidth: silverman(c)}
}

// NewKDEWithBandwidth builds an estimator with an explicit bandwidth
// (useful in tests); non-positive bandwidths fall back to Silverman.
func NewKDEWithBandwidth(samples []float64, h float64) *KDE {
	k := NewKDE(samples)
	if h > 0 {
		k.bandwidth = h
	}
	return k
}

// Bandwidth returns the kernel bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// Density returns the estimated density at x.
func (k *KDE) Density(x float64) float64 {
	n := len(k.samples)
	if n == 0 {
		return 0
	}
	h := k.bandwidth
	if h <= 0 {
		h = 1e-9
	}
	const invSqrt2Pi = 0.3989422804014327
	var s float64
	for _, xi := range k.samples {
		u := (x - xi) / h
		s += math.Exp(-0.5*u*u) * invSqrt2Pi
	}
	return s / (float64(n) * h)
}

// Grid evaluates the density over points evenly spaced points spanning
// [lo, hi] and returns the xs and densities. It panics if points < 2.
func (k *KDE) Grid(lo, hi float64, points int) (xs, ys []float64) {
	if points < 2 {
		panic("stats: KDE.Grid needs at least 2 points")
	}
	xs = make([]float64, points)
	ys = make([]float64, points)
	step := (hi - lo) / float64(points-1)
	for i := range xs {
		xs[i] = lo + float64(i)*step
		ys[i] = k.Density(xs[i])
	}
	return xs, ys
}

// AutoGrid evaluates the density over a grid spanning the sample range
// padded by two bandwidths on each side.
func (k *KDE) AutoGrid(points int) (xs, ys []float64) {
	lo, hi := minMax(k.samples)
	pad := 2 * k.bandwidth
	if pad == 0 {
		pad = 1
	}
	return k.Grid(lo-pad, hi+pad, points)
}

// silverman computes Silverman's rule-of-thumb bandwidth
// h = 0.9 · min(σ, IQR/1.34) · n^(−1/5), with guards for degenerate inputs.
func silverman(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return 1
	}
	var r Running
	for _, x := range samples {
		r.Observe(x)
	}
	sigma := math.Sqrt(r.SampleVariance())
	iqr := Percentile(samples, 75) - Percentile(samples, 25)
	spread := sigma
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	if spread <= 0 {
		spread = math.Abs(samples[0])
		if spread == 0 {
			spread = 1
		}
	}
	return 0.9 * spread * math.Pow(float64(n), -0.2)
}

// Percentile returns the p-th percentile (0–100) of the samples using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice and does not modify its input.
func Percentile(samples []float64, p float64) float64 {
	n := len(samples)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, samples)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func minMax(samples []float64) (lo, hi float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	lo, hi = samples[0], samples[0]
	for _, x := range samples[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Histogram counts samples into equal-width bins over [lo, hi]. Samples
// outside the range are clamped into the boundary bins, which matches how
// the paper's density plots truncate outliers.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram builds a histogram with bins equal-width buckets; it panics
// if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic("stats: NewHistogram needs at least 1 bin")
	}
	if hi <= lo {
		panic("stats: NewHistogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.Total++
}

// Fraction returns the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
