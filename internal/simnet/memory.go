package simnet

import (
	"errors"

	"selsync/internal/nn"
)

// ErrOutOfMemory reports that a training configuration does not fit on the
// device — the failure mode the paper hits when scaling SSP batch sizes
// (Transformer on a 12 GB K80 fails beyond b=64, §II-C).
var ErrOutOfMemory = errors.New("simnet: configuration exceeds device memory")

// MemoryBytes returns the modeled resident footprint of training the given
// model at the given batch size: a base term (weights, gradients, optimizer
// state, framework overhead) plus an activation term linear in the batch.
func MemoryBytes(spec nn.ModelSpec, batch int) float64 {
	if batch < 0 {
		panic("simnet: negative batch")
	}
	return spec.MemBytesBase + float64(batch)*spec.MemBytesPerEx
}

// CheckFits returns ErrOutOfMemory when the configuration exceeds the
// device's capacity.
func CheckFits(spec nn.ModelSpec, batch int, d *Device) error {
	if MemoryBytes(spec, batch) > d.MemBytes {
		return ErrOutOfMemory
	}
	return nil
}

// MaxBatch returns the largest batch size that fits on the device, probing
// powers of two up to limit (the paper's Fig. 2 sweeps 32…1024).
func MaxBatch(spec nn.ModelSpec, d *Device, limit int) int {
	best := 0
	for b := 1; b <= limit; b *= 2 {
		if CheckFits(spec, b, d) == nil {
			best = b
		}
	}
	return best
}
