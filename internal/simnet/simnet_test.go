package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"selsync/internal/nn"
)

func TestComputeTimeScalesWithFlops(t *testing.T) {
	d := &Device{Name: "x", FlopsEff: 1e9, Straggle: 1}
	if got := d.ComputeTime(1e9); math.Abs(got-1) > 1e-12 {
		t.Fatalf("1 GFLOP on 1 GFLOP/s: got %v want 1", got)
	}
	if got := d.ComputeTime(0); got != 0 {
		t.Fatalf("zero flops: %v", got)
	}
}

func TestComputeTimeStraggler(t *testing.T) {
	fast := &Device{FlopsEff: 1e9, Straggle: 1}
	slow := &Device{FlopsEff: 1e9, Straggle: 3}
	if got := slow.ComputeTime(1e9) / fast.ComputeTime(1e9); math.Abs(got-3) > 1e-12 {
		t.Fatalf("straggler ratio: %v", got)
	}
	// Straggle below 1 clamps to nominal.
	clamped := &Device{FlopsEff: 1e9, Straggle: 0.5}
	if got := clamped.ComputeTime(1e9); math.Abs(got-1) > 1e-12 {
		t.Fatalf("clamped straggle: %v", got)
	}
}

func TestComputeTimeJitterIsBoundedAndDeterministic(t *testing.T) {
	d1, d2 := NewV100(7), NewV100(7)
	for i := 0; i < 50; i++ {
		t1, t2 := d1.ComputeTime(1e12), d2.ComputeTime(1e12)
		if t1 != t2 {
			t.Fatal("same-seed devices must jitter identically")
		}
		nominal := 1e12 / d1.FlopsEff
		if t1 < nominal*0.8 || t1 > nominal*1.25 {
			t.Fatalf("jitter too wide: %v vs nominal %v", t1, nominal)
		}
	}
}

func TestComputeTimePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewK80(1).ComputeTime(-1)
}

func TestStepFlops(t *testing.T) {
	if got := StepFlops(2e9, 32); got != 64e9 {
		t.Fatalf("StepFlops: %v", got)
	}
}

func TestPSPushIncastGrowsWithWorkers(t *testing.T) {
	n := DefaultNetwork()
	const M = 200e6
	t1 := n.PSPush(M, 1)
	t32 := n.PSPush(M, 32)
	if t32 <= t1 {
		t.Fatalf("incast must grow once the PS tier binds: %v vs %v", t1, t32)
	}
	// At one worker the worker link (5 Gbps) binds: 200 MB → 0.32 s.
	want := M*8/5e9 + n.Latency
	if math.Abs(t1-want) > 1e-9 {
		t.Fatalf("single-worker push: got %v want %v", t1, want)
	}
	// At 16 workers the worker link still binds (16·200 MB over 100 Gbps
	// is only 0.256 s), so the cost equals the single-worker case — the
	// PS tier's headroom is exactly what lets Fig. 1a's ResNet keep
	// scaling to 16.
	if got := n.PSPush(M, 16); math.Abs(got-want) > 1e-9 {
		t.Fatalf("16-worker push: got %v want %v", got, want)
	}
	// At 32 workers the PS tier binds: 32·200 MB over 100 Gbps = 0.512 s.
	want32 := 32*M*8/100e9 + n.Latency
	if math.Abs(t32-want32) > 1e-9 {
		t.Fatalf("32-worker push: got %v want %v", t32, want32)
	}
}

func TestPSSyncIsPushPlusPull(t *testing.T) {
	n := DefaultNetwork()
	if got := n.PSSync(1e6, 4); math.Abs(got-2*n.PSPush(1e6, 4)) > 1e-12 {
		t.Fatalf("PSSync: %v", got)
	}
}

func TestRingAllReduce(t *testing.T) {
	n := DefaultNetwork()
	if got := n.RingAllReduce(1e9, 1); got != 0 {
		t.Fatalf("single worker ring: %v", got)
	}
	// Ring cost approaches 2·M/bw as N grows and beats PS at scale for
	// large models.
	ring := n.RingAllReduce(500e6, 16)
	ps := n.PSSync(500e6, 16)
	if ring >= ps {
		t.Fatalf("ring (%v) should beat PS (%v) at 16 workers on 500 MB", ring, ps)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.RingAllReduce(1, 0)
}

func TestAllGatherBitsMatchesPaperScale(t *testing.T) {
	n := DefaultNetwork()
	got := n.AllGatherBits(16)
	// Paper reports ≈2–4 ms for the flags exchange on 16 workers.
	if got < 2e-3 || got > 4.5e-3 {
		t.Fatalf("flags allgather should be 2–4 ms, got %v", got)
	}
	if n.AllGatherBits(1) != 0 {
		t.Fatal("single worker needs no allgather")
	}
	if n.AllGatherBits(2) >= got {
		t.Fatal("allgather must grow with workers")
	}
}

func TestP2P(t *testing.T) {
	n := DefaultNetwork()
	want := 3e3*8/5e9 + 1e-3
	if got := n.P2P(3e3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("P2P: got %v want %v", got, want)
	}
}

// Property: PS sync time is monotone in both bytes and workers.
func TestQuickPSSyncMonotone(t *testing.T) {
	n := DefaultNetwork()
	f := func(rawB uint32, rawW uint8) bool {
		bytes := float64(rawB%1e6) + 1
		w := int(rawW%30) + 1
		return n.PSSync(bytes, w) <= n.PSSync(bytes*2, w) &&
			n.PSSync(bytes, w) <= n.PSSync(bytes, w+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryModelTransformerOOMAtPaperPoint(t *testing.T) {
	// Paper §II-C: Transformer fails beyond b=64 on the K80's 12 GB.
	spec := nn.TransformerLite().Spec
	k80 := NewK80(1)
	if err := CheckFits(spec, 32, k80); err != nil {
		t.Fatalf("b=32 must fit: %v", err)
	}
	if err := CheckFits(spec, 64, k80); err == nil {
		t.Fatal("b=64 must OOM on the K80")
	}
	if got := MaxBatch(spec, k80, 1024); got != 32 {
		t.Fatalf("MaxBatch: got %d want 32", got)
	}
}

func TestMemoryModelAllZooModelsFitAtTrainingBatch(t *testing.T) {
	// Every paper training configuration must fit its device.
	v100 := NewV100(1)
	cases := map[string]int{"resnet": 32, "vgg": 32, "alexnet": 128, "transformer": 20}
	for name, batch := range cases {
		spec := nn.Zoo()[name].Spec
		if err := CheckFits(spec, batch, v100); err != nil {
			t.Fatalf("%s at b=%d should fit a V100: %v", name, batch, err)
		}
	}
}

func TestMemoryGrowsWithBatch(t *testing.T) {
	spec := nn.Zoo()["resnet"].Spec
	if !(MemoryBytes(spec, 1024) > MemoryBytes(spec, 32)) {
		t.Fatal("memory must grow with batch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MemoryBytes(spec, -1)
}

// TestFig1aShape validates the headline systems shape of Fig. 1a with the
// calibrated defaults: relative throughput at 16 workers is highest for
// ResNet (≈3×) and VGG dips below 1× at 2 workers.
func TestFig1aShape(t *testing.T) {
	net := DefaultNetwork()
	dev := &Device{FlopsEff: 8e11, Straggle: 1} // jitter-free V100
	rel := func(spec nn.ModelSpec, batch, workers int) float64 {
		tc := dev.ComputeTime(StepFlops(spec.FlopsPerSample, batch))
		if workers == 1 {
			return 1
		}
		ts := net.PSSync(spec.WireBytes, workers)
		single := float64(batch) / tc
		cluster := float64(workers*batch) / (tc + ts)
		return cluster / single
	}
	zoo := nn.Zoo()
	resnet16 := rel(zoo["resnet"].Spec, 32, 16)
	vgg2 := rel(zoo["vgg"].Spec, 32, 2)
	vgg16 := rel(zoo["vgg"].Spec, 32, 16)
	if resnet16 < 2.5 || resnet16 > 6 {
		t.Fatalf("ResNet rel throughput at 16 should be ≈3×, got %.2f", resnet16)
	}
	if vgg2 >= 1 {
		t.Fatalf("VGG at 2 workers should be below 1×, got %.2f", vgg2)
	}
	if vgg16 <= vgg2 {
		t.Fatalf("VGG must improve with scale: %.2f vs %.2f", vgg16, vgg2)
	}
	if resnet16 <= vgg16 {
		t.Fatalf("ResNet must out-scale VGG: %.2f vs %.2f", resnet16, vgg16)
	}
}
