// Package simnet prices the simulated cluster: how long computation takes
// on a modeled accelerator, how long synchronization takes on the modeled
// network, and how much device memory a training configuration needs.
//
// Everything here returns *virtual seconds*. Training math elsewhere is
// real; these models only advance the virtual clocks that Table I's
// speedups and Fig. 1a's throughput curves are computed from. The default
// constants are calibrated so that the *shape* of the paper's systems plots
// (who scales, where the crossovers sit) is reproduced — DESIGN.md's
// substitution table explains why absolute numbers are out of scope.
package simnet

import (
	"math"

	"selsync/internal/tensor"
)

// Device models one accelerator: an effective sustained FLOP rate (peak ×
// framework efficiency), a memory capacity, log-normal per-step jitter, and
// a deterministic straggle factor for heterogeneity experiments.
type Device struct {
	Name     string
	FlopsEff float64 // sustained FLOP/s under the training framework
	MemBytes float64 // accelerator memory capacity
	Jitter   float64 // sigma of log-normal noise on compute time (0 = none)
	Straggle float64 // multiplier ≥ 1; 1 = nominal speed

	rng *tensor.RNG
}

// NewV100 models the NVIDIA V100 the paper trains on, at the effective
// throughput a PyTorch PS worker sustains (well under peak).
func NewV100(seed uint64) *Device {
	return &Device{
		Name: "V100", FlopsEff: 8e11, MemBytes: 16e9,
		Jitter: 0.03, Straggle: 1, rng: tensor.NewRNG(seed),
	}
}

// NewK80 models the NVIDIA K80 used for the paper's batch-size study
// (Fig. 2).
func NewK80(seed uint64) *Device {
	return &Device{
		Name: "K80", FlopsEff: 1e12 / 4, MemBytes: 12e9,
		Jitter: 0.03, Straggle: 1, rng: tensor.NewRNG(seed),
	}
}

// ComputeTime returns the virtual seconds to execute the given FLOPs,
// including jitter and the straggle factor.
func (d *Device) ComputeTime(flops float64) float64 {
	if flops < 0 {
		panic("simnet: negative flops")
	}
	t := flops / d.FlopsEff * math.Max(1, d.Straggle)
	if d.Jitter > 0 && d.rng != nil {
		t *= d.rng.LogNorm(0, d.Jitter)
	}
	return t
}

// RNGState returns the jitter generator's state word (0 for a jitter-free
// device built without a generator). Checkpointing captures it so a
// resumed run draws the same compute-time noise an uninterrupted run
// would have drawn.
func (d *Device) RNGState() uint64 {
	if d.rng == nil {
		return 0
	}
	return d.rng.State()
}

// SetRNGState overwrites the jitter generator's state word. It is a no-op
// on a device built without a generator.
func (d *Device) SetRNGState(s uint64) {
	if d.rng != nil {
		d.rng.SetState(s)
	}
}

// StepFlops returns the forward+backward cost of one mini-batch of the
// given per-sample cost.
func StepFlops(flopsPerSample float64, batch int) float64 {
	return flopsPerSample * float64(batch)
}

// Network models the cluster fabric: per-worker NIC bandwidth, the
// effective aggregate bandwidth of the parameter-server tier (sharding and
// pipelining let the PS absorb more than one NIC's worth of incast), and a
// per-message latency floor.
type Network struct {
	WorkerBw float64 // bit/s on one worker's link (paper: 5 Gbps)
	PSBw     float64 // bit/s effective at the PS tier
	Latency  float64 // seconds per message
}

// DefaultNetwork returns the calibrated testbed model: 5 Gbps worker NICs,
// 100 Gbps effective PS tier, 1 ms latency. With the zoo's wire sizes these
// constants reproduce Fig. 1a's ordering (ResNet scales best, VGG11 dips
// below 1× at two workers).
func DefaultNetwork() *Network {
	return &Network{WorkerBw: 5e9, PSBw: 100e9, Latency: 1e-3}
}

// PSPush returns the virtual time for all `workers` replicas to push
// `bytes` each to the parameter server: the slower of one worker's
// serialization and the PS tier absorbing the full incast.
func (n *Network) PSPush(bytes float64, workers int) float64 {
	if workers <= 0 {
		panic("simnet: PSPush needs at least one worker")
	}
	worker := bytes * 8 / n.WorkerBw
	ps := float64(workers) * bytes * 8 / n.PSBw
	return math.Max(worker, ps) + n.Latency
}

// PSPull is the mirror of PSPush: the PS fans the aggregated state back out.
func (n *Network) PSPull(bytes float64, workers int) float64 {
	return n.PSPush(bytes, workers)
}

// PSSync returns the full blocking synchronization cost: push then pull.
// This is the ts term of the paper's t_it = t_c + t_s decomposition.
func (n *Network) PSSync(bytes float64, workers int) float64 {
	return n.PSPush(bytes, workers) + n.PSPull(bytes, workers)
}

// RingAllReduce returns the bandwidth-optimal ring collective cost,
// 2·(N−1)/N · bytes over the worker link plus 2·(N−1) latency hops —
// the alternative aggregation the paper notes SelSync can swap in (§III-E).
func (n *Network) RingAllReduce(bytes float64, workers int) float64 {
	if workers <= 0 {
		panic("simnet: RingAllReduce needs at least one worker")
	}
	if workers == 1 {
		return 0
	}
	N := float64(workers)
	return 2*(N-1)/N*(bytes*8/n.WorkerBw) + 2*(N-1)*n.Latency
}

// AllGatherBits returns the cost of SelSync's synchronization-status
// exchange: one bit per worker, latency-dominated (log₂N rounds). The
// paper measures ≈2–4 ms on its 16-node cluster; with the default 1 ms
// latency this model yields 4 ms at N=16.
func (n *Network) AllGatherBits(workers int) float64 {
	if workers <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(workers)))
	return rounds * n.Latency
}

// ViewChange returns the virtual cost of an elastic membership
// transition: the survivors agree on the new view (a latency-dominated
// gossip with the same log₂N round shape as the bit allgather) and
// re-form their collectives.
func (n *Network) ViewChange(workers int) float64 {
	if workers <= 1 {
		return n.Latency
	}
	rounds := math.Ceil(math.Log2(float64(workers))) + 1
	return rounds * n.Latency
}

// P2P returns the cost of a point-to-point transfer of `bytes` (used by
// randomized data-injection).
func (n *Network) P2P(bytes float64) float64 {
	return bytes*8/n.WorkerBw + n.Latency
}
