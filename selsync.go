// Package selsync is a Go reproduction of "Accelerating Distributed ML
// Training via Selective Synchronization" (Tyagi & Swany, IEEE CLUSTER
// 2023). It bundles a from-scratch neural-network stack, a virtual-time
// cluster simulator (parameter server, workers, network cost models), the
// four distributed training algorithms the paper evaluates — BSP,
// FedAvg(C, E), SSP(s) and SelSync(δ) — and an experiment harness that
// regenerates every table and figure of the paper's evaluation.
//
// This file is the public facade: it re-exports the user-facing types and
// entry points from the internal packages so applications (see examples/)
// can program against one import.
//
// Quick start:
//
//	wload := selsync.WorkloadForModel("resnet", 4096, 1024, 1)
//	cfg := selsync.Config{
//		Model: selsync.ResNetLite(10, 6), Workers: 8, Batch: 16, Seed: 1,
//		Train: wload.Train, Test: wload.Test, Scheme: selsync.SelDP,
//	}
//	res := selsync.RunSelSync(cfg, selsync.SelSyncOptions{
//		Delta: 0.05, Mode: selsync.ParamAgg,
//	})
//	fmt.Println(res)
//
// Every method runs on one policy-driven SPMD engine: Run(cfg, policy)
// owns batching, gradient compute, evaluation and early stopping, and a
// SyncPolicy decides each step's synchronization (the Run* entry points are
// thin shims over it). Policies compose — SwitchPolicy and SchedulePolicy
// host Sync-Switch-style hybrids the per-method loops could not express:
//
//	res := selsync.Run(cfg, &selsync.SwitchPolicy{
//		From:   selsync.BSPPolicy{},                                // warmup
//		To:     selsync.SelSyncPolicy{Delta: 0.05, Mode: selsync.ParamAgg},
//		AtStep: 500,
//	})
//
// or, declaratively from a schedule string ("bsp:500,selsync" — the same
// grammar cmd/selsync-train's -method flag accepts):
//
//	policy, err := selsync.ParseSchedule("bsp:500,selsync", mkPolicy)
//
// Custom policies are one Decide method away; see SyncPolicy.
//
// Jobs: every Run* call is fire-and-forget. For a run you can cancel,
// watch, checkpoint and resume, build a Job:
//
//	job := selsync.NewJob(cfg, selsync.SelSyncPolicy{Delta: 0.05, Mode: selsync.ParamAgg},
//		selsync.WithObserver(selsync.NewProgressObserver(os.Stderr)))
//	res, err := job.Run(ctx) // honors ctx cancellation with a partial Result
//	if errors.Is(err, context.Canceled) {
//		ck, _ := job.Checkpoint(context.Background())
//		selsync.SaveCheckpoint("run.ckpt", ck) // resume later with WithResume
//	}
//
// A resumed run (selsync.WithResume(ck) with an identically constructed
// Config and policy) continues bit-identically to one that was never
// interrupted. See examples/jobs for the full program.
//
// Distributed runs: setting Config.Fabric routes every synchronization
// round (parameter/gradient aggregation, broadcast, the SelSync flags
// allgather) through a communication backend instead of shared memory.
// Each OS process runs the same code over its block of workers — see
// examples/distributed for the full program:
//
//	// On process i of N (every process runs identical code):
//	fabric, err := selsync.DialTCPFabric(rank, peers, workers) // peers[rank] = own host:port
//	if err != nil { ... }
//	defer fabric.Close()
//	cfg.Fabric = fabric
//	res := selsync.RunSelSync(cfg, selsync.SelSyncOptions{Delta: 0.05, Mode: selsync.ParamAgg})
//	// res is bit-identical on every rank, and to a single-process run
//	// (diagnostics excepted: Config.TrackDeltas records only on the rank
//	// hosting worker 0, and SSP's authoritative Result lives on rank 0).
//
// cmd/selsync-node launches such jobs on localhost (-launch N) or joins
// one rank at a time (-rank i -peers ...).
package selsync

import (
	"io"

	"selsync/internal/cluster"
	"selsync/internal/comm"
	"selsync/internal/data"
	"selsync/internal/experiments"
	"selsync/internal/nn"
	"selsync/internal/serve"
	"selsync/internal/train"
)

// Core configuration and result types.
type (
	// Config describes one training run (workload, cluster size,
	// partitioning, schedule, budgets).
	Config = train.Config
	// Result carries the outcome: iterations, LSSR, metric history,
	// simulated wall-clock.
	Result = train.Result
	// EvalPoint is one point of a Result's test-metric history.
	EvalPoint = train.EvalPoint
	// SelSyncOptions selects the significance threshold δ and the
	// aggregation mode.
	SelSyncOptions = train.SelSyncOptions
	// FedAvgOptions selects the participation fraction C and sync factor E.
	FedAvgOptions = train.FedAvgOptions
	// SSPOptions selects the staleness bound.
	SSPOptions = train.SSPOptions
	// NonIID configures label-skewed placement and data-injection.
	NonIID = train.NonIID
	// Injection is the randomized data-injection configuration (α, β).
	Injection = data.Injection
	// Dataset is an in-memory supervised dataset.
	Dataset = data.Dataset
	// Workload couples a train and test dataset.
	Workload = data.Workload
	// Factory builds identically-initialized model replicas.
	Factory = nn.Factory
	// ModelSpec describes a zoo model and its simulated cost constants.
	ModelSpec = nn.ModelSpec
	// Scheme selects the IID partitioning strategy.
	Scheme = data.Scheme
	// AggMode selects parameter vs gradient aggregation.
	AggMode = cluster.AggMode
)

// Partitioning schemes (paper §III-D).
const (
	// DefDP gives each worker one unique chunk (classic DDP).
	DefDP = data.DefDP
	// SelDP rotates all chunks through every worker (SelSync's scheme).
	SelDP = data.SelDP
)

// Aggregation modes (paper §III-C).
const (
	// ParamAgg averages parameters — SelSync's recommended mode.
	ParamAgg = cluster.ParamAgg
	// GradAgg averages gradients, leaving diverged replicas diverged.
	GradAgg = cluster.GradAgg
)

// The Job API: context-cancellable runs, typed event streams and
// bit-identical checkpoint/resume. NewJob is the primary entry point; the
// Run* functions below are fire-and-forget shims over it.
type (
	// Job is a first-class training run: Run(ctx) once, observe, cancel,
	// checkpoint, resume.
	Job = train.Job
	// JobOption configures NewJob (WithObserver, WithResume).
	JobOption = train.Option
	// Checkpoint is a complete run snapshot at a step boundary; a resumed
	// run continues bit-identically to an uninterrupted one.
	Checkpoint = train.Checkpoint
	// Observer receives a Job's typed event stream.
	Observer = train.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = train.ObserverFunc
	// Event is the sealed interface of all training events.
	Event = train.Event
	// StepEvent fires once per training step.
	StepEvent = train.StepEvent
	// SyncEvent fires for every synchronization round.
	SyncEvent = train.SyncEvent
	// EvalEvent fires after every test evaluation.
	EvalEvent = train.EvalEvent
	// PhaseSwitchEvent fires when a composite policy changes phase.
	PhaseSwitchEvent = train.PhaseSwitchEvent
	// CheckpointEvent fires when a mid-run checkpoint is captured.
	CheckpointEvent = train.CheckpointEvent
)

var (
	// NewJob builds a job over a config and a fresh policy value.
	NewJob = train.NewJob
	// WithObserver attaches an observer to the job's event stream.
	WithObserver = train.WithObserver
	// WithResume starts the run from a checkpoint.
	WithResume = train.WithResume
	// NewJSONLObserver writes one JSON object per event to a writer.
	NewJSONLObserver = train.NewJSONLObserver
	// NewProgressObserver renders live terminal progress.
	NewProgressObserver = train.NewProgressObserver
	// MultiObserver fans one event stream out to several observers.
	MultiObserver = train.MultiObserver
	// SaveCheckpoint / LoadCheckpoint are the checkpoint file helpers;
	// DecodeCheckpoint reads the wire format from any reader.
	SaveCheckpoint   = train.SaveCheckpoint
	LoadCheckpoint   = train.LoadCheckpoint
	DecodeCheckpoint = train.DecodeCheckpoint
)

// Training algorithms.
var (
	// Run executes one training run under an arbitrary SyncPolicy — the
	// engine every method entry point below is a shim over.
	Run = train.Run
	// RunBSP trains with bulk-synchronous parallelism (the baseline).
	RunBSP = train.RunBSP
	// RunSelSync trains with δ-based selective synchronization (Alg. 1).
	RunSelSync = train.RunSelSync
	// RunFedAvg trains with Federated Averaging.
	RunFedAvg = train.RunFedAvg
	// RunSSP trains with stale-synchronous parallelism.
	RunSSP = train.RunSSP
	// RunLocalSGD trains with purely local updates (δ ≥ M degeneration).
	RunLocalSGD = train.RunLocalSGD
	// ParseSchedule parses a phase-schedule string ("bsp:500,selsync")
	// into a policy, given a factory binding names to policies.
	ParseSchedule = train.ParseSchedule
)

// Synchronization policies. A SyncPolicy decides, once per engine step, how
// the freshly computed gradients synchronize; implement the interface for
// custom strategies, or compose the built-ins with Switch/Schedule.
type (
	// SyncPolicy is the per-step synchronization decision interface.
	SyncPolicy = train.SyncPolicy
	// Signals carries the per-step statistics a policy decides on.
	Signals = train.Signals
	// Action is a policy's decision for one step.
	Action = train.Action
	// ActionKind selects local, sync-grads, sync-params or round-average.
	ActionKind = train.ActionKind
	// BSPPolicy synchronizes gradients every step.
	BSPPolicy = train.BSPPolicy
	// LocalSGDPolicy never synchronizes.
	LocalSGDPolicy = train.LocalSGDPolicy
	// SelSyncPolicy votes per step on the Δ(g_i) significance signal.
	SelSyncPolicy = train.SelSyncPolicy
	// FedAvgPolicy averages a random worker fraction on a round cadence.
	FedAvgPolicy = train.FedAvgPolicy
	// SSPPolicy runs the asynchronous stale-synchronous event loop.
	SSPPolicy = train.SSPPolicy
	// SwitchPolicy changes the inner policy at a step boundary or when a
	// Signals predicate fires (Sync-Switch-style hybrids).
	SwitchPolicy = train.SwitchPolicy
	// SchedulePolicy runs a declarative phase list back to back.
	SchedulePolicy = train.SchedulePolicy
	// PolicyPhase is one SchedulePolicy entry: a policy and its step span.
	PolicyPhase = train.PolicyPhase
)

// Action kinds.
const (
	// ActLocal applies each worker's own update; no communication.
	ActLocal = train.ActLocal
	// ActSyncGrads aggregates gradients and applies the mean everywhere.
	ActSyncGrads = train.ActSyncGrads
	// ActSyncParams applies locally, then averages parameters.
	ActSyncParams = train.ActSyncParams
	// ActRoundAverage averages a participant subset's parameters and
	// broadcasts (FedAvg's round boundary).
	ActRoundAverage = train.ActRoundAverage
)

// Model zoo (miniature analogues of the paper's four workloads).
var (
	// ResNetLite is the deep residual classifier (ResNet101 analogue).
	ResNetLite = nn.ResNetLite
	// VGGLite is the plain convolutional classifier (VGG11 analogue).
	VGGLite = nn.VGGLite
	// AlexNetLite is the wide shallow classifier (AlexNet analogue).
	AlexNetLite = nn.AlexNetLite
	// TransformerLite is the encoder language model (Transformer analogue).
	TransformerLite = nn.TransformerLite
	// Zoo returns all four models keyed by short name.
	Zoo = nn.Zoo
)

// Dataset construction.
var (
	// NewWorkload builds one of the four synthetic dataset pairs.
	NewWorkload = data.NewWorkload
	// WorkloadForModel maps zoo model names to their paper datasets.
	WorkloadForModel = data.WorkloadForModel
	// NewImageGen builds a custom class-conditional Gaussian image source.
	NewImageGen = data.NewImageGen
	// NewTextGen builds a custom Markov-chain token source.
	NewTextGen = data.NewTextGen
)

// WorkloadSpec selects a synthetic dataset kind and size.
type WorkloadSpec = data.WorkloadSpec

// Fabric is a communication backend for Config.Fabric: the loopback
// (single process) or a TCP mesh (one process per rank).
type Fabric = comm.Fabric

// NewLoopbackFabric builds the in-process communication backend over n
// workers — what Config.Fabric = nil selects implicitly. Useful when the
// caller wants to read the traffic ledger (Stats) after a run.
func NewLoopbackFabric(workers int) Fabric { return comm.NewLoopback(workers) }

// DialTCPFabric joins a multi-process training job as `rank`: it listens
// on peers[rank], connects the full TCP mesh to the other ranks, and
// returns the fabric for Config.Fabric. workers is the global worker
// count and must be divisible by len(peers); this rank hosts workers
// [rank·W/P, (rank+1)·W/P). Close the fabric after the run.
func DialTCPFabric(rank int, peers []string, workers int) (Fabric, error) {
	return comm.DialTCPMesh(rank, peers, workers)
}

// The serving subsystem (cmd/selsync-serve, cmd/selsync-ctl): a
// long-lived multi-tenant daemon accepting job submissions over the
// SEL1 wire protocol, scheduling them onto a bounded slot pool with
// strict priorities and weighted fair shares, and preempting through
// the checkpoint machinery — a preempted-then-resumed job's Result
// digest equals the uninterrupted run's.
type (
	// ServeServer is the scheduling daemon core.
	ServeServer = serve.Server
	// ServeOptions configures slots, queue limits, quotas and weights.
	ServeOptions = serve.Options
	// ServeClient speaks the wire protocol over one connection.
	ServeClient = serve.Client
	// ServeJobSpec describes one submitted job (tenant, priority, run
	// parameters).
	ServeJobSpec = serve.JobSpec
	// ServeStatus is the daemon's status snapshot.
	ServeStatus = serve.Status
	// ServeWireEvent is one streamed job event.
	ServeWireEvent = serve.WireEvent
	// ServeJobBuilder turns an admitted spec into a runnable Job.
	ServeJobBuilder = serve.Builder
)

var (
	// NewServeServer builds a scheduling daemon over a job builder.
	NewServeServer = serve.NewServer
	// NewStandardJobBuilder is the builder the daemon normally runs with:
	// specs build exactly as cmd/selsync-train would build them, each on
	// a fresh in-process loopback fabric.
	NewStandardJobBuilder = experiments.ServeBuilder
	// DialServe connects a client to a daemon's TCP address.
	DialServe = serve.Dial
	// NewServeClient wraps an established connection.
	NewServeClient = serve.NewClient
	// NewServePipeListener is an in-process listener for wire-level use
	// without sockets.
	NewServePipeListener = serve.NewPipeListener
)

// ExperimentScale selects experiment sizing for RunExperiment.
type ExperimentScale = experiments.Scale

// Experiment scales.
const (
	// ScaleTiny runs in seconds (unit-test sizing).
	ScaleTiny = experiments.Tiny
	// ScaleQuick runs in tens of seconds per training experiment.
	ScaleQuick = experiments.Quick
	// ScaleFull is the closest to the paper's 16-worker setup.
	ScaleFull = experiments.Full
)

// RunExperiment regenerates one paper table/figure by id ("fig1a" …
// "table1"), writing the report to w.
func RunExperiment(id string, scale ExperimentScale, w io.Writer) error {
	return experiments.Run(id, scale, w)
}

// RunAllExperiments regenerates every table and figure in id order. With
// SetExperimentParallelism(n>1) the independent training runs inside (and
// across) experiments execute concurrently under one n-slot budget; the
// report bytes still come out in id order, identical to a serial run for
// every deterministic experiment.
func RunAllExperiments(scale ExperimentScale, w io.Writer) error {
	return experiments.RunAll(scale, w)
}

// SetExperimentParallelism sets the process-wide number of training runs
// the experiment harness may execute concurrently (selsync-bench's
// -parallel flag). Values below 1 mean serial, the default.
func SetExperimentParallelism(n int) { experiments.SetParallelism(n) }

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }
