module selsync

go 1.24
