package selsync_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact through the
// experiment registry and prints the same rows/series the paper reports.
//
// Benchmarks default to the Tiny scale so the full suite finishes in
// minutes; set SELSYNC_BENCH_SCALE=quick or =full for larger runs (the
// same knob cmd/selsync-bench exposes as -scale). Reported metrics:
// simulated-seconds are not wall-clock — see EXPERIMENTS.md.

import (
	"fmt"
	"io"
	"os"
	"testing"

	"selsync"
)

func benchScale() selsync.ExperimentScale {
	switch os.Getenv("SELSYNC_BENCH_SCALE") {
	case "quick":
		return selsync.ScaleQuick
	case "full":
		return selsync.ScaleFull
	default:
		return selsync.ScaleTiny
	}
}

func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// Print the report once; further iterations (the benchmark
		// framework may repeat fast experiments) only measure.
		var out io.Writer = io.Discard
		if i == 0 {
			fmt.Printf("\n--- %s (scale=%s) ---\n", id, benchScale())
			out = os.Stdout
		}
		if err := selsync.RunExperiment(id, benchScale(), out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1aThroughput regenerates Fig. 1a: relative PS throughput vs
// cluster size for the four models.
func BenchmarkFig1aThroughput(b *testing.B) { runExperimentBench(b, "fig1a") }

// BenchmarkFig1bFedAvgNonIID regenerates Fig. 1b: FedAvg accuracy under IID
// vs non-IID data.
func BenchmarkFig1bFedAvgNonIID(b *testing.B) { runExperimentBench(b, "fig1b") }

// BenchmarkFig2aComputeTime regenerates Fig. 2a: compute time vs batch size
// on the K80 device model.
func BenchmarkFig2aComputeTime(b *testing.B) { runExperimentBench(b, "fig2a") }

// BenchmarkFig2bMemory regenerates Fig. 2b: memory vs batch size with OOM
// marks at the K80's 12 GB.
func BenchmarkFig2bMemory(b *testing.B) { runExperimentBench(b, "fig2b") }

// BenchmarkFig3GradientKDE regenerates Fig. 3: gradient density early vs
// late in training.
func BenchmarkFig3GradientKDE(b *testing.B) { runExperimentBench(b, "fig3") }

// BenchmarkFig4HessianVsVariance regenerates Fig. 4: Hessian top-eigenvalue
// against first-order gradient variance.
func BenchmarkFig4HessianVsVariance(b *testing.B) { runExperimentBench(b, "fig4") }

// BenchmarkFig5DeltaCorrelation regenerates Fig. 5: Δ(g_i) alongside the
// test-metric curve in BSP training.
func BenchmarkFig5DeltaCorrelation(b *testing.B) { runExperimentBench(b, "fig5") }

// BenchmarkFig8aTrackerOverhead regenerates Fig. 8a: Δ(g_i) computation
// overhead vs smoothing window.
func BenchmarkFig8aTrackerOverhead(b *testing.B) { runExperimentBench(b, "fig8a") }

// BenchmarkFig8bPartitionOverhead regenerates Fig. 8b: DefDP vs SelDP
// one-time partitioning cost.
func BenchmarkFig8bPartitionOverhead(b *testing.B) { runExperimentBench(b, "fig8b") }

// BenchmarkFig9SelDPvsDefDP regenerates Fig. 9: SelSync convergence under
// the two partitioning schemes.
func BenchmarkFig9SelDPvsDefDP(b *testing.B) { runExperimentBench(b, "fig9") }

// BenchmarkFig10GAvsPA regenerates Fig. 10: gradient vs parameter
// aggregation in SelSync.
func BenchmarkFig10GAvsPA(b *testing.B) { runExperimentBench(b, "fig10") }

// BenchmarkFig11WeightDensity regenerates Fig. 11: weight distributions
// under BSP vs SelSync-PA vs SelSync-GA.
func BenchmarkFig11WeightDensity(b *testing.B) { runExperimentBench(b, "fig11") }

// BenchmarkFig12DataInjection regenerates Fig. 12: non-IID data-injection
// configurations vs FedAvg.
func BenchmarkFig12DataInjection(b *testing.B) { runExperimentBench(b, "fig12") }

// BenchmarkAblationTopology regenerates the PS-vs-ring transport ablation
// (the §III-E allreduce swap).
func BenchmarkAblationTopology(b *testing.B) { runExperimentBench(b, "ablation-topology") }

// BenchmarkAblationStraggler regenerates the systems-heterogeneity
// ablation: BSP vs SSP vs SelSync under a 4× straggler.
func BenchmarkAblationStraggler(b *testing.B) { runExperimentBench(b, "ablation-straggler") }

// BenchmarkSwitchPolicy regenerates the Sync-Switch-style hybrid
// comparison: BSP warmup → SelSync steady-state vs the pure policies.
func BenchmarkSwitchPolicy(b *testing.B) { runExperimentBench(b, "switch") }

// BenchmarkTable1 regenerates Table I: the full method × workload
// comparison with iterations, LSSR, metric, convergence difference and
// speedup over BSP.
func BenchmarkTable1(b *testing.B) { runExperimentBench(b, "table1") }
