// Command selsync-sweep sweeps the SelSync significance threshold δ for one
// workload and reports how LSSR, the final metric and the simulated
// training time move — the paper's Fig. 6 intuition ("slide δ between 0 and
// M to adjust the degree of training between synchronous and local
// updates") as a table.
//
// Usage:
//
//	selsync-sweep -model resnet -deltas 0,0.05,0.1,0.2,0.4 -steps 300
//
// With -warmup N every run becomes the Sync-Switch-style hybrid — N steps
// of BSP warmup, then SelSync(δ) — so the sweep shows how the threshold
// behaves downstream of a synchronous warmup phase:
//
//	selsync-sweep -model resnet -deltas 0.05,0.1,0.2 -warmup 100 -steps 300
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"selsync"
	"selsync/internal/experiments"
)

func main() {
	model := flag.String("model", "resnet", "workload: resnet | vgg | alexnet | transformer")
	deltasArg := flag.String("deltas", "0,0.02,0.05,0.1,0.2,1000", "comma-separated δ values (1000 ≈ pure local SGD)")
	workers := flag.Int("workers", 8, "number of simulated workers")
	steps := flag.Int("steps", 240, "training steps per worker")
	trainN := flag.Int("train", 6144, "training-set size")
	testN := flag.Int("test", 1024, "test-set size")
	seed := flag.Uint64("seed", 1, "run seed")
	agg := flag.String("agg", "param", "aggregation during sync: param | grad")
	warmup := flag.Int("warmup", 0, "BSP warmup steps before SelSync takes over (0 = pure SelSync)")
	flag.Parse()

	var deltas []float64
	for _, part := range strings.Split(*deltasArg, ",") {
		d, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad delta %q: %v\n", part, err)
			os.Exit(2)
		}
		deltas = append(deltas, d)
	}
	mode := selsync.ParamAgg
	if *agg == "grad" {
		mode = selsync.GradAgg
	}

	p := experiments.Params{
		Workers: *workers, TrainN: *trainN, TestN: *testN,
		MaxSteps: *steps, EvalEvery: max(1, *steps/10),
	}
	wl := experiments.SetupWorkload(*model, p, *seed)
	cfg := experiments.BaseConfig(wl, p, *seed)

	unit := "acc%"
	if wl.Factory.Spec.Perplexity {
		unit = "ppl"
	}
	hybrid := ""
	if *warmup > 0 {
		hybrid = fmt.Sprintf(", BSP warmup %d steps", *warmup)
	}
	fmt.Printf("δ sweep: %s, %d workers, %d steps, %s aggregation%s\n",
		wl.Factory.Spec.Name, *workers, *steps, mode, hybrid)
	fmt.Printf("%-10s %-8s %-10s %-10s %-12s %s\n", "delta", "LSSR", "sync", "local", "simtime(s)", unit)
	// Each δ runs as a cancellable Job: Ctrl-C finishes none of the
	// remaining rows but reports the sweep gathered so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// Once cancellation is in flight, restore default SIGINT handling
		// so a second Ctrl-C force-kills immediately.
		<-ctx.Done()
		stop()
	}()
	baseline := -1.0
	for _, d := range deltas {
		// A fresh policy per run: policies carry per-run state.
		var policy selsync.SyncPolicy = selsync.SelSyncPolicy{Delta: d, Mode: mode}
		if *warmup > 0 {
			policy = &selsync.SwitchPolicy{
				From:   selsync.BSPPolicy{},
				To:     selsync.SelSyncPolicy{Delta: d, Mode: mode},
				AtStep: *warmup,
			}
		}
		res, err := selsync.NewJob(cfg, policy).Run(ctx)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Println("sweep interrupted; rows above are complete runs")
			return
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if baseline < 0 {
			baseline = res.SimTime
		}
		fmt.Printf("%-10.3g %-8.3f %-10d %-10d %-12.1f %.2f   (%.2fx vs δ=%.3g)\n",
			d, res.LSSR, res.SyncSteps, res.LocalSteps, res.SimTime,
			res.BestMetric, baseline/res.SimTime, deltas[0])
	}
}
