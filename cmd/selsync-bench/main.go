// Command selsync-bench regenerates the paper's tables and figures and
// measures the raw compute engine.
//
// Usage:
//
//	selsync-bench -exp table1 -scale quick
//	selsync-bench -exp all -scale tiny
//	selsync-bench -steps            # write BENCH_step.json
//	selsync-bench -list
//
// Scales: tiny (seconds), quick (tens of seconds per training experiment),
// full (closest to the paper's 16-worker setup; minutes to hours). See
// EXPERIMENTS.md for what each scale means and how simulated seconds relate
// to wall-clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"selsync"
	"selsync/internal/nn"
	"selsync/internal/tensor"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1a…table1) or 'all'")
	scale := flag.String("scale", "tiny", "experiment scale: tiny | quick | full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	steps := flag.Bool("steps", false, "run the four zoo step benchmarks and write machine-readable results")
	stepsOut := flag.String("stepsout", "BENCH_step.json", "output path for -steps results")
	flag.Parse()

	if *list {
		for _, id := range selsync.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	if *steps {
		if err := runStepBenchmarks(*stepsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var s selsync.ExperimentScale
	switch *scale {
	case "tiny":
		s = selsync.ScaleTiny
	case "quick":
		s = selsync.ScaleQuick
	case "full":
		s = selsync.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want tiny|quick|full)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = selsync.ExperimentIDs()
	}
	for _, id := range ids {
		fmt.Printf("\n### %s (%s scale)\n", id, *scale)
		if err := selsync.RunExperiment(id, s, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// stepBenchResult is one row of BENCH_step.json: the per-step cost of one
// zoo model under the same workload as the BenchmarkXxxStep benchmarks in
// internal/nn, so the perf trajectory is comparable across PRs.
type stepBenchResult struct {
	Name        string  `json:"name"`
	Model       string  `json:"model"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

type stepBenchReport struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Benchmarks []stepBenchResult `json:"benchmarks"`
}

// runStepBenchmarks measures one training step (ComputeGradients) for each
// zoo model via testing.Benchmark and writes the results as JSON.
func runStepBenchmarks(outPath string) error {
	benchName := map[string]string{
		"resnet":      "BenchmarkResNetLiteStep",
		"vgg":         "BenchmarkVGGLiteStep",
		"alexnet":     "BenchmarkAlexNetLiteStep",
		"transformer": "BenchmarkTransformerLiteStep",
	}
	report := stepBenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	zoo := nn.Zoo()
	for _, short := range nn.ZooNames() {
		if benchName[short] == "" {
			return fmt.Errorf("selsync-bench: zoo model %q has no step-benchmark name; update runStepBenchmarks", short)
		}
		f := zoo[short]
		net := f.New(1)
		x, labels := nn.StepBenchBatch(f, tensor.NewRNG(2))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				net.ComputeGradients(x, labels)
			}
		})
		res := stepBenchResult{
			Name:        benchName[short],
			Model:       f.Spec.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Printf("%-30s %12.0f ns/op %8d B/op %6d allocs/op (%d iters)\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
