// Command selsync-bench regenerates the paper's tables and figures and
// measures the raw compute engine.
//
// Usage:
//
//	selsync-bench -exp table1 -scale quick
//	selsync-bench -exp all -scale tiny
//	selsync-bench -steps            # write BENCH_step.json
//	selsync-bench -list
//
// Scales: tiny (seconds), quick (tens of seconds per training experiment),
// full (closest to the paper's 16-worker setup; minutes to hours). See
// EXPERIMENTS.md for what each scale means and how simulated seconds relate
// to wall-clock.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"selsync"
	"selsync/internal/cluster"
	"selsync/internal/comm"
	"selsync/internal/nn"
	"selsync/internal/opt"
	"selsync/internal/serve"
	"selsync/internal/tensor"
	"selsync/internal/train"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1a…table1) or 'all'")
	scale := flag.String("scale", "tiny", "experiment scale: tiny | quick | full")
	parallel := flag.Int("parallel", 1, "concurrent training runs across the experiment harness (1 = serial)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	steps := flag.Bool("steps", false, "run the zoo step, sync-round and optimizer benchmarks and write machine-readable results")
	stepsOut := flag.String("stepsout", "BENCH_step.json", "output path for -steps results")
	flag.Parse()

	selsync.SetExperimentParallelism(*parallel)

	if *list {
		for _, id := range selsync.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	if *steps {
		if err := runStepBenchmarks(*stepsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var s selsync.ExperimentScale
	switch *scale {
	case "tiny":
		s = selsync.ScaleTiny
	case "quick":
		s = selsync.ScaleQuick
	case "full":
		s = selsync.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want tiny|quick|full)\n", *scale)
		os.Exit(2)
	}

	if *exp == "all" {
		// RunAllExperiments prints the same per-id headers and, under
		// -parallel, schedules every training run in the registry through
		// the shared budget while keeping the output in id order.
		if err := selsync.RunAllExperiments(s, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("\n### %s (%s scale)\n", *exp, *scale)
	if err := selsync.RunExperiment(*exp, s, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// stepBenchResult is one row of BENCH_step.json: the per-step cost of one
// zoo model under the same workload as the BenchmarkXxxStep benchmarks in
// internal/nn, so the perf trajectory is comparable across PRs.
type stepBenchResult struct {
	Name        string  `json:"name"`
	Model       string  `json:"model"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
	// WireBytesPerOp is the logical bytes-on-wire one operation moves
	// through the parameter server (push + pull, exact codec framing);
	// only the codec sync-round rows report it.
	WireBytesPerOp int64 `json:"wire_bytes_per_op,omitempty"`
}

type stepBenchReport struct {
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Benchmarks []stepBenchResult `json:"benchmarks"`
}

// runStepBenchmarks measures one training step (ComputeGradients) for each
// zoo model, one aggregation round per mode, and one whole-model optimizer
// step per optimizer family, via testing.Benchmark, and writes the results
// as JSON.
func runStepBenchmarks(outPath string) error {
	benchName := map[string]string{
		"resnet":      "BenchmarkResNetLiteStep",
		"vgg":         "BenchmarkVGGLiteStep",
		"alexnet":     "BenchmarkAlexNetLiteStep",
		"transformer": "BenchmarkTransformerLiteStep",
	}
	report := stepBenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	record := func(name, model string, r testing.BenchmarkResult) {
		res := stepBenchResult{
			Name:        name,
			Model:       model,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Printf("%-30s %12.0f ns/op %8d B/op %6d allocs/op (%d iters)\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
	}
	zoo := nn.Zoo()
	for _, short := range nn.ZooNames() {
		if benchName[short] == "" {
			return fmt.Errorf("selsync-bench: zoo model %q has no step-benchmark name; update runStepBenchmarks", short)
		}
		f := zoo[short]
		net := f.New(1)
		x, labels := nn.StepBenchBatch(f, tensor.NewRNG(2))
		record(benchName[short], f.Spec.Name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				net.ComputeGradients(x, labels)
			}
		}))
	}

	// Aggregation-round microbenches: one parameter round (push + average
	// + broadcast) and one gradient round on the same 8-worker ResNetLite
	// cluster internal/cluster's BenchmarkSyncRound* use, so the numbers
	// are comparable across PRs.
	factory := nn.ResNetLite(10, 6)
	cl := cluster.New(cluster.Config{
		Workers: 8,
		Model:   factory,
		Opt: func(ps []*nn.Param) opt.Optimizer {
			return opt.NewSGD(ps, 0.9, 4e-4)
		},
		Seed: 7,
	})
	record("BenchmarkSyncRoundParams", factory.Spec.Name, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl.AggregateParams()
		}
	}))
	gradDst := tensor.NewVector(cl.Dim())
	record("BenchmarkSyncRoundGrads", factory.Spec.Name, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cl.AggregateGrads(gradDst)
		}
	}))

	// Codec sync-round microbenches: one gradient round per payload codec
	// on the same 8-worker ResNetLite cluster, with the exact bytes-on-wire
	// that round moves through the PS alongside ns/op — the wire-efficiency
	// trajectory of the compressed collectives. "none" takes the dense
	// fast path and doubles as the uncompressed baseline.
	for _, spec := range []string{"none", "topk:0.01", "topk:0.1", "q8", "q16", "partial:0.25"} {
		codec, err := comm.ParseCodec(spec)
		if err != nil {
			return fmt.Errorf("selsync-bench: codec %q: %w", spec, err)
		}
		ccl := cluster.New(cluster.Config{
			Workers: 8,
			Model:   factory,
			Opt: func(ps []*nn.Param) opt.Optimizer {
				return opt.NewSGD(ps, 0.9, 4e-4)
			},
			Seed:  7,
			Codec: codec,
		})
		dst := tensor.NewVector(ccl.Dim())
		ccl.AggregateGrads(dst) // warm the codec state off the measured rounds
		recvBefore, sentBefore := ccl.PS.BytesRecv(), ccl.PS.BytesSent()
		rounds := 0
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ccl.AggregateGrads(dst)
				rounds++
			}
		})
		wire := int64(0)
		if rounds > 0 {
			wire = (ccl.PS.BytesRecv() - recvBefore + ccl.PS.BytesSent() - sentBefore) / int64(rounds)
		}
		res := stepBenchResult{
			Name:           "BenchmarkSyncRoundCodec/" + spec,
			Model:          factory.Spec.Name,
			NsPerOp:        float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:     r.AllocedBytesPerOp(),
			AllocsPerOp:    r.AllocsPerOp(),
			Iterations:     r.N,
			WireBytesPerOp: wire,
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Printf("%-30s %12.0f ns/op %8d B/op %6d allocs/op %10d wire B/op (%d iters)\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.WireBytesPerOp, res.Iterations)
	}

	// Optimizer-step microbenches: one fused whole-arena update per
	// optimizer family over a ResNetLite replica.
	optNet := factory.New(7)
	g := tensor.NewVector(nn.ParamCount(optNet.Params()))
	tensor.NewRNG(8).NormVector(g, 0, 1e-2)
	nn.SetGrads(optNet.Params(), g)
	sgd := opt.NewSGD(optNet.Params(), 0.9, 4e-4)
	record("BenchmarkOptimizerStep/SGD", factory.Spec.Name, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sgd.Step(0.05)
		}
	}))
	adam := opt.NewAdam(optNet.Params())
	record("BenchmarkOptimizerStep/Adam", factory.Spec.Name, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			adam.Step(1e-3)
		}
	}))

	// Observer-overhead benches: the per-step cost of one whole Job run
	// (a small 4-worker SelSync workload) with no observer, a counting
	// observer (pure event construction + dispatch), and the JSONL sink
	// (construction + encoding). ns/op and allocs are normalized per
	// training step, so "no-observer" doubles as the engine-loop baseline
	// and the deltas are the price of watching.
	gen := selsync.NewImageGen(4, 1.2, 1.0, 3e3, 9)
	trainSet, testSet := gen.Dataset("train", 512), gen.Dataset("test", 256)
	const obsSteps = 64
	obsCfg := selsync.Config{
		Model: selsync.VGGLite(4), Workers: 4, Batch: 16, Seed: 9,
		Train: trainSet, Test: testSet, Scheme: selsync.SelDP,
		MaxSteps: obsSteps, EvalEvery: obsSteps,
	}
	benchJob := func(opts ...selsync.JobOption) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				policy := selsync.SelSyncPolicy{Delta: 0.05, Mode: selsync.ParamAgg}
				if _, err := selsync.NewJob(obsCfg, policy, opts...).Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	recordPerStep := func(name string, r testing.BenchmarkResult) {
		res := stepBenchResult{
			Name:        name,
			Model:       obsCfg.Model.Spec.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N) / obsSteps,
			BytesPerOp:  r.AllocedBytesPerOp() / obsSteps,
			AllocsPerOp: r.AllocsPerOp() / obsSteps,
			Iterations:  r.N,
		}
		report.Benchmarks = append(report.Benchmarks, res)
		fmt.Printf("%-30s %12.0f ns/op %8d B/op %6d allocs/op (%d iters)\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iterations)
	}
	recordPerStep("BenchmarkJobStep/no-observer", benchJob())
	var eventCount int64
	recordPerStep("BenchmarkJobStep/counting-observer", benchJob(
		selsync.WithObserver(selsync.ObserverFunc(func(selsync.Event) { eventCount++ }))))
	recordPerStep("BenchmarkJobStep/jsonl-observer", benchJob(
		selsync.WithObserver(selsync.NewJSONLObserver(io.Discard))))

	// Scheduler microbenches: the serve daemon's control-plane costs.
	// SubmitAdmit is one submit→admit round (validation, admission event,
	// a schedule pass over ~1k live-or-final jobs, and the queued-cancel
	// finalize that keeps the live set bounded) against a server whose
	// single slot is pinned by a blocked job, so no training runs inside
	// the timed loop. The server is rebuilt every 1024 iterations to keep
	// the history scan deterministic.
	benchSpec := serve.JobSpec{Tenant: "bench", Model: "resnet", Method: "bsp",
		Workers: 1, TrainN: 8, TestN: 4, MaxSteps: 1}
	release := make(chan struct{})
	blocked := func(spec serve.JobSpec, opts ...train.Option) (serve.BuiltJob, error) {
		<-release
		return serve.BuiltJob{}, fmt.Errorf("bench slot released")
	}
	var benchServers []*serve.Server
	var admSrv *serve.Server
	resetAdm := func() {
		admSrv = serve.NewServer(blocked, serve.Options{Slots: 1, QueueLimit: 1 << 20})
		benchServers = append(benchServers, admSrv)
		if _, err := admSrv.Submit(benchSpec); err != nil {
			panic(err)
		}
	}
	record("BenchmarkServeSubmitAdmit", "resnet", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i%1024 == 0 {
				b.StopTimer()
				resetAdm()
				b.StartTimer()
			}
			id, err := admSrv.Submit(benchSpec)
			if err != nil {
				b.Fatal(err)
			}
			if err := admSrv.Cancel(id); err != nil {
				b.Fatal(err)
			}
		}
	}))
	close(release)
	for _, s := range benchServers {
		s.Close()
	}

	// PreemptResume is one full preemption round-trip on a single-slot
	// server running real jobs: a high-priority 1-step arrival forces the
	// resident victim to checkpoint and park, runs to completion, and the
	// victim resumes from its checkpoint — ns/op is park + preempter run
	// + restore, the scheduling latency a high-priority tenant pays.
	preSrv := serve.NewServer(selsync.NewStandardJobBuilder(), serve.Options{Slots: 1})
	lis := serve.NewPipeListener()
	go preSrv.Serve(lis)
	victim := benchSpec
	victim.Method, victim.MaxSteps, victim.Seed = "selsync", 1<<20, 5
	victim.TrainN, victim.TestN, victim.Workers = 64, 32, 2
	victimID, err := preSrv.Submit(victim)
	if err != nil {
		return err
	}
	conn, err := lis.Dial()
	if err != nil {
		return err
	}
	events := make(chan serve.WireEvent, 1<<16)
	go func() {
		cl := serve.NewClient(conn)
		cl.Events(victimID, 0, func(ev serve.WireEvent) error {
			events <- ev
			return nil
		})
	}()
	hi := benchSpec
	hi.Tenant, hi.Priority, hi.Seed = "vip", 5, 9
	awaitType := func(b *testing.B, want string) {
		for ev := range events {
			if ev.Type == want {
				return
			}
			if ev.Final {
				b.Fatalf("victim finalized (%s) mid-benchmark", ev.Type)
			}
		}
	}
	record("BenchmarkServePreemptResume", "resnet", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := preSrv.Submit(hi); err != nil {
				b.Fatal(err)
			}
			awaitType(b, serve.EvParked)
			awaitType(b, "recovery")
		}
	}))
	preSrv.Close()

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
