// Command selsync-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	selsync-bench -exp table1 -scale quick
//	selsync-bench -exp all -scale tiny
//	selsync-bench -list
//
// Scales: tiny (seconds), quick (tens of seconds per training experiment),
// full (closest to the paper's 16-worker setup; minutes to hours).
package main

import (
	"flag"
	"fmt"
	"os"

	"selsync"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1a…table1) or 'all'")
	scale := flag.String("scale", "tiny", "experiment scale: tiny | quick | full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range selsync.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	var s selsync.ExperimentScale
	switch *scale {
	case "tiny":
		s = selsync.ScaleTiny
	case "quick":
		s = selsync.ScaleQuick
	case "full":
		s = selsync.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want tiny|quick|full)\n", *scale)
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = selsync.ExperimentIDs()
	}
	for _, id := range ids {
		fmt.Printf("\n### %s (%s scale)\n", id, *scale)
		if err := selsync.RunExperiment(id, s, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
