// Command selsync-serve is the multi-tenant training daemon: it accepts
// job submissions over the SEL1 wire protocol, admits them through
// per-tenant quotas, schedules them onto a bounded pool of worker slots
// with strict priorities and weighted fair shares, and preempts
// lower-priority jobs through the checkpoint machinery — a preempted
// job parks at a step boundary and later resumes bit-identically (its
// Result digest equals an uninterrupted run's).
//
//	selsync-serve -listen 127.0.0.1:7600 -slots 4 -weights anna=3,bo=2,cyn=1
//
// Drive it with cmd/selsync-ctl (submit | status | events | cancel |
// drain). SIGINT/SIGTERM and the drain op both shut down gracefully:
// running jobs park via checkpoints (spilled to -spill with the pending
// specs, when set) and the daemon exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"selsync/internal/experiments"
	"selsync/internal/serve"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7600", "wire-protocol listen address")
	slots := flag.Int("slots", 2, "concurrent job slots")
	queue := flag.Int("queue", 1024, "live-job limit (queued + running + parked)")
	quota := flag.Int("tenant-quota", 0, "live-job limit per tenant (0 = unlimited)")
	weights := flag.String("weights", "", "fair-share weights, e.g. anna=3,bo=2,cyn=1 (absent tenants weigh 1)")
	spill := flag.String("spill", "", "directory for parked checkpoints and pending specs on drain")
	flag.Parse()

	w, err := parseWeights(*weights)
	if err != nil {
		fail("%v", err)
	}
	logger := log.New(os.Stderr, "selsync-serve: ", log.LstdFlags)
	srv := serve.NewServer(experiments.ServeBuilder(), serve.Options{
		Slots: *slots, QueueLimit: *queue, TenantQuota: *quota,
		Weights: w, SpillDir: *spill, Logf: logger.Printf,
	})

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("%v", err)
	}
	logger.Printf("listening on %s (%d slots)", lis.Addr(), *slots)

	// SIGINT/SIGTERM drain gracefully; the drain closes the listener,
	// Serve returns, and the daemon exits 0. A second signal force-kills
	// through default handling.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		signal.Stop(sig)
		logger.Printf("signal received, draining")
		if err := srv.Drain(context.Background()); err != nil {
			logger.Printf("drain: %v", err)
		}
	}()

	if err := srv.Serve(lis); err != nil {
		fail("%v", err)
	}
	srv.Close()
	logger.Printf("drained, exiting")
}

// parseWeights parses "tenant=weight,tenant=weight".
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-weights entry %q: want tenant=weight", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-weights entry %q: weight must be a positive number", part)
		}
		out[name] = w
	}
	return out, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
