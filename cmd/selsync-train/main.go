// Command selsync-train runs one distributed-training configuration and
// prints the metric history and summary.
//
// Single process (loopback transport, the default):
//
//	selsync-train -model resnet -method selsync -delta 0.18 -workers 8 -steps 400
//	selsync-train -model vgg -method fedavg -c 0.5 -e 0.125
//	selsync-train -model alexnet -method ssp -staleness 100
//	selsync-train -model transformer -method bsp
//
// -method also accepts a hybrid phase schedule — Sync-Switch-style BSP
// warmup flowing into SelSync steady-state, for example:
//
//	selsync-train -model resnet -method bsp:200,selsync -steps 400
//
// Across OS processes (TCP transport; start one process per rank, or use
// cmd/selsync-node's -launch to spawn them all):
//
//	selsync-train -transport tcp -rank 0 -peers 127.0.0.1:7701,127.0.0.1:7702 -workers 2 -model resnet &
//	selsync-train -transport tcp -rank 1 -peers 127.0.0.1:7701,127.0.0.1:7702 -workers 2 -model resnet
package main

import (
	"flag"
	"fmt"
	"os"

	"selsync/internal/experiments"
)

func main() {
	model := flag.String("model", "resnet", "workload: resnet | vgg | alexnet | transformer")
	method := flag.String("method", "selsync", "policy: bsp | selsync | fedavg | ssp | local, or a schedule like bsp:200,selsync")
	workers := flag.Int("workers", 8, "number of workers")
	steps := flag.Int("steps", 300, "training steps per worker")
	trainN := flag.Int("train", 6144, "training-set size")
	testN := flag.Int("test", 1024, "test-set size")
	seed := flag.Uint64("seed", 1, "run seed")
	scheme := flag.String("scheme", "seldp", "IID partitioning: seldp | defdp")
	delta := flag.Float64("delta", 0, "SelSync δ (0 = the workload's calibrated low threshold)")
	mode := flag.String("agg", "param", "SelSync aggregation: param | grad")
	c := flag.Float64("c", 1, "FedAvg participation fraction C")
	e := flag.Float64("e", 0.25, "FedAvg sync factor E")
	staleness := flag.Int("staleness", 100, "SSP staleness bound")
	labelsPerWorker := flag.Int("noniid", 0, "labels per worker (0 = IID)")
	alpha := flag.Float64("alpha", 0, "data-injection α (0 = off)")
	beta := flag.Float64("beta", 0, "data-injection β")
	transport := flag.String("transport", "loopback", "communication backend: loopback | tcp")
	rank := flag.Int("rank", -1, "this process's rank (tcp transport only)")
	peers := flag.String("peers", "", "comma-separated host:port per rank (tcp transport only)")
	flag.Parse()

	switch *mode {
	case "param", "grad":
	default:
		fail("unknown -agg %q (want param or grad)", *mode)
	}

	spec := experiments.RunSpec{
		Model: *model, Method: *method, Scheme: *scheme,
		Workers: *workers, TrainN: *trainN, TestN: *testN,
		MaxSteps: *steps, Seed: *seed,
		Delta: *delta, GradAgg: *mode == "grad",
		C: *c, E: *e, Staleness: *staleness,
		LabelsPerWorker: *labelsPerWorker, Alpha: *alpha, Beta: *beta,
	}

	fabric, report, err := experiments.ParseTransport(*transport, *rank, *peers, *workers)
	if err != nil {
		fail("%v", err)
	}
	if fabric != nil {
		defer fabric.Close()
		spec.Fabric = fabric
	}

	res, err := experiments.RunOne(spec)
	if err != nil {
		fail("%v", err)
	}
	if !report {
		fmt.Printf("rank %d done (rank 0 holds the report)\n", *rank)
		return
	}

	unit := "acc%"
	if res.Perplexity {
		unit = "ppl"
	}
	fmt.Printf("step      epoch    simtime(s)  loss      %s\n", unit)
	for _, pt := range res.History {
		fmt.Printf("%-9d %-8.2f %-11.1f %-9.4f %.2f\n", pt.Step, pt.Epoch, pt.SimTime, pt.Loss, pt.Metric)
	}
	fmt.Println()
	fmt.Println(res)
	fmt.Printf("sync steps: %d, local steps: %d, comm reduction vs BSP: %.1fx\n",
		res.SyncSteps, res.LocalSteps, res.CommReduction())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
