// Command selsync-train runs one distributed-training configuration and
// prints the metric history and summary.
//
// Single process (loopback transport, the default):
//
//	selsync-train -model resnet -method selsync -delta 0.18 -workers 8 -steps 400
//	selsync-train -model vgg -method fedavg -c 0.5 -e 0.125
//	selsync-train -model alexnet -method ssp -staleness 100
//	selsync-train -model transformer -method bsp
//
// -method also accepts a hybrid phase schedule — Sync-Switch-style BSP
// warmup flowing into SelSync steady-state, for example:
//
//	selsync-train -model resnet -method bsp:200,selsync -steps 400
//
// The run is a cancellable Job: -progress streams live evaluations to
// stderr, -events writes the full typed event stream as JSONL, and SIGINT
// (Ctrl-C) stops gracefully at the next step boundary, printing the
// partial result. With -checkpoint the final state — interrupted or not —
// is saved, and -resume continues a saved run bit-identically:
//
//	selsync-train -model resnet -steps 400 -checkpoint run.ckpt   # Ctrl-C midway
//	selsync-train -model resnet -steps 400 -resume run.ckpt       # same flags!
//
// -digest prints a SHA-256 digest over every Result field (exact float
// bits); an interrupted-and-resumed run digests identically to an
// uninterrupted one.
//
// Across OS processes (TCP transport; start one process per rank, or use
// cmd/selsync-node's -launch to spawn them all):
//
//	selsync-train -transport tcp -rank 0 -peers 127.0.0.1:7701,127.0.0.1:7702 -workers 2 -model resnet &
//	selsync-train -transport tcp -rank 1 -peers 127.0.0.1:7701,127.0.0.1:7702 -workers 2 -model resnet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"selsync/internal/experiments"
	"selsync/internal/train"
)

func main() {
	model := flag.String("model", "resnet", "workload: resnet | vgg | alexnet | transformer")
	method := flag.String("method", "selsync", "policy: bsp | selsync | fedavg | ssp | local, or a schedule like bsp:200,selsync")
	workers := flag.Int("workers", 8, "number of workers")
	steps := flag.Int("steps", 300, "training steps per worker")
	trainN := flag.Int("train", 6144, "training-set size")
	testN := flag.Int("test", 1024, "test-set size")
	seed := flag.Uint64("seed", 1, "run seed")
	scheme := flag.String("scheme", "seldp", "IID partitioning: seldp | defdp")
	delta := flag.Float64("delta", 0, "SelSync δ (0 = the workload's calibrated low threshold)")
	mode := flag.String("agg", "param", "SelSync aggregation: param | grad")
	c := flag.Float64("c", 1, "FedAvg participation fraction C")
	e := flag.Float64("e", 0.25, "FedAvg sync factor E")
	staleness := flag.Int("staleness", 100, "SSP staleness bound")
	labelsPerWorker := flag.Int("noniid", 0, "labels per worker (0 = IID)")
	alpha := flag.Float64("alpha", 0, "data-injection α (0 = off)")
	beta := flag.Float64("beta", 0, "data-injection β")
	codec := flag.String("codec", "", "wire payload codec: none | topk:F | q8 | q16 | partial:U[,D] (default none)")
	overlap := flag.Bool("overlap", false, "overlap gradient collectives with the backward pass (bucketed sync-as-computed)")
	transport := flag.String("transport", "loopback", "communication backend: loopback | tcp")
	rank := flag.Int("rank", -1, "this process's rank (tcp transport only)")
	peers := flag.String("peers", "", "comma-separated host:port per rank (tcp transport only)")
	progress := flag.Bool("progress", false, "stream live evaluation progress to stderr")
	eventsPath := flag.String("events", "", "write the typed event stream as JSONL to this file")
	ckptPath := flag.String("checkpoint", "", "save the run's final (or interrupted) state to this file")
	resumePath := flag.String("resume", "", "resume from a checkpoint file (same flags as the producing run)")
	digest := flag.Bool("digest", false, "print the Result's SHA-256 digest (bit-exact run fingerprint)")
	flag.Parse()

	switch *mode {
	case "param", "grad":
	default:
		fail("unknown -agg %q (want param or grad)", *mode)
	}

	spec := experiments.RunSpec{
		Model: *model, Method: *method, Scheme: *scheme,
		Workers: *workers, TrainN: *trainN, TestN: *testN,
		MaxSteps: *steps, Seed: *seed,
		Delta: *delta, GradAgg: *mode == "grad",
		C: *c, E: *e, Staleness: *staleness,
		LabelsPerWorker: *labelsPerWorker, Alpha: *alpha, Beta: *beta,
		Codec: *codec, Overlap: *overlap,
	}

	// First SIGINT cancels the run at the next step boundary (the partial
	// result is printed and, with -checkpoint, saved); a second SIGINT
	// kills the process the usual way. Installed before workload setup so
	// an early Ctrl-C is graceful too.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// Once cancellation is in flight, restore default SIGINT handling
		// so a second Ctrl-C force-kills (e.g. a mesh rank stuck in a
		// collective that never reaches a step boundary).
		<-ctx.Done()
		stop()
	}()

	fabric, report, err := experiments.ParseTransport(*transport, *rank, *peers, *workers)
	if err != nil {
		fail("%v", err)
	}
	if fabric != nil {
		defer fabric.Close()
		spec.Fabric = fabric
	}

	var opts []train.Option
	var prog *train.ProgressObserver
	if *progress {
		prog = train.NewProgressObserver(os.Stderr)
		opts = append(opts, train.WithObserver(prog))
	}
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fail("creating -events file: %v", err)
		}
		defer f.Close()
		sink := train.NewJSONLObserver(f)
		defer func() {
			if sink.Err() != nil {
				fmt.Fprintf(os.Stderr, "event stream truncated: %v\n", sink.Err())
			}
		}()
		opts = append(opts, train.WithObserver(sink))
	}
	if *resumePath != "" {
		ck, err := train.LoadCheckpoint(*resumePath)
		if err != nil {
			fail("loading -resume checkpoint: %v", err)
		}
		fmt.Fprintf(os.Stderr, "resuming from %s (step %d)\n", *resumePath, ck.Step)
		opts = append(opts, train.WithResume(ck))
	}

	job, wl, err := experiments.JobFor(spec, opts...)
	if err != nil {
		fail("%v", err)
	}
	if prog != nil {
		prog.SetPerplexity(wl.Factory.Spec.Perplexity)
	}

	res, err := job.Run(ctx)
	// A deadline behaves like Ctrl-C: Run still hands back a valid
	// partial Result worth printing and checkpointing.
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if err != nil && !interrupted {
		fail("%v", err)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "\ninterrupted at step %d; result below is the partial run\n", res.Steps)
	}
	if *ckptPath != "" {
		ck, err := job.Checkpoint(context.Background())
		if err != nil {
			fail("checkpointing: %v", err)
		}
		if err := train.SaveCheckpoint(*ckptPath, ck); err != nil {
			fail("saving checkpoint: %v", err)
		}
		fmt.Fprintf(os.Stderr, "checkpoint saved to %s (resume with -resume %s)\n", *ckptPath, *ckptPath)
	}
	if !report {
		fmt.Printf("rank %d done (rank 0 holds the report)\n", *rank)
		return
	}

	unit := "acc%"
	if res.Perplexity {
		unit = "ppl"
	}
	fmt.Printf("step      epoch    simtime(s)  loss      %s\n", unit)
	for _, pt := range res.History {
		fmt.Printf("%-9d %-8.2f %-11.1f %-9.4f %.2f\n", pt.Step, pt.Epoch, pt.SimTime, pt.Loss, pt.Metric)
	}
	fmt.Println()
	fmt.Println(res)
	fmt.Printf("sync steps: %d, local steps: %d, comm reduction vs BSP: %.1fx\n",
		res.SyncSteps, res.LocalSteps, res.CommReduction())
	if *digest {
		fmt.Printf("result digest: %s\n", res.Digest())
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
