// Command selsync-train runs one distributed-training configuration on the
// simulated cluster and prints the metric history and summary.
//
// Usage:
//
//	selsync-train -model resnet -method selsync -delta 0.18 -workers 8 -steps 400
//	selsync-train -model vgg -method fedavg -c 0.5 -e 0.125
//	selsync-train -model alexnet -method ssp -staleness 100
//	selsync-train -model transformer -method bsp
package main

import (
	"flag"
	"fmt"
	"os"

	"selsync"
	"selsync/internal/experiments"
)

func main() {
	model := flag.String("model", "resnet", "workload: resnet | vgg | alexnet | transformer")
	method := flag.String("method", "selsync", "algorithm: bsp | selsync | fedavg | ssp | local")
	workers := flag.Int("workers", 8, "number of simulated workers")
	steps := flag.Int("steps", 300, "training steps per worker")
	trainN := flag.Int("train", 6144, "training-set size")
	testN := flag.Int("test", 1024, "test-set size")
	seed := flag.Uint64("seed", 1, "run seed")
	scheme := flag.String("scheme", "seldp", "IID partitioning: seldp | defdp")
	delta := flag.Float64("delta", 0, "SelSync δ (0 = the workload's calibrated low threshold)")
	mode := flag.String("agg", "param", "SelSync aggregation: param | grad")
	c := flag.Float64("c", 1, "FedAvg participation fraction C")
	e := flag.Float64("e", 0.25, "FedAvg sync factor E")
	staleness := flag.Int("staleness", 100, "SSP staleness bound")
	labelsPerWorker := flag.Int("noniid", 0, "labels per worker (0 = IID)")
	alpha := flag.Float64("alpha", 0, "data-injection α (0 = off)")
	beta := flag.Float64("beta", 0, "data-injection β")
	flag.Parse()

	p := experiments.Params{
		Workers: *workers, TrainN: *trainN, TestN: *testN,
		MaxSteps: *steps, EvalEvery: maxInt(1, *steps/10),
	}
	wl := experiments.SetupWorkload(*model, p, *seed)
	cfg := experiments.BaseConfig(wl, p, *seed)
	switch *scheme {
	case "seldp":
		cfg.Scheme = selsync.SelDP
	case "defdp":
		cfg.Scheme = selsync.DefDP
	default:
		fail("unknown scheme %q", *scheme)
	}
	if *labelsPerWorker > 0 {
		non := &selsync.NonIID{LabelsPerWorker: *labelsPerWorker}
		if *alpha > 0 {
			non.Injection = &selsync.Injection{Alpha: *alpha, Beta: *beta}
		}
		cfg.NonIID = non
	}

	var res *selsync.Result
	switch *method {
	case "bsp":
		res = selsync.RunBSP(cfg)
	case "local":
		res = selsync.RunLocalSGD(cfg)
	case "selsync":
		d := *delta
		if d == 0 {
			d = wl.DeltaLow
		}
		m := selsync.ParamAgg
		if *mode == "grad" {
			m = selsync.GradAgg
		}
		res = selsync.RunSelSync(cfg, selsync.SelSyncOptions{Delta: d, Mode: m})
	case "fedavg":
		res = selsync.RunFedAvg(cfg, selsync.FedAvgOptions{C: *c, E: *e})
	case "ssp":
		res = selsync.RunSSP(cfg, selsync.SSPOptions{Staleness: *staleness, PSOpt: wl.SSPOpt})
	default:
		fail("unknown method %q", *method)
	}

	unit := "acc%"
	if res.Perplexity {
		unit = "ppl"
	}
	fmt.Printf("step      epoch    simtime(s)  loss      %s\n", unit)
	for _, pt := range res.History {
		fmt.Printf("%-9d %-8.2f %-11.1f %-9.4f %.2f\n", pt.Step, pt.Epoch, pt.SimTime, pt.Loss, pt.Metric)
	}
	fmt.Println()
	fmt.Println(res)
	fmt.Printf("sync steps: %d, local steps: %d, comm reduction vs BSP: %.1fx\n",
		res.SyncSteps, res.LocalSteps, res.CommReduction())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
