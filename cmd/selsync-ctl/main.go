// Command selsync-ctl drives a selsync-serve daemon over the wire
// protocol:
//
//	selsync-ctl -addr 127.0.0.1:7600 submit -tenant anna -model resnet -method selsync -steps 40 -wait
//	selsync-ctl -addr 127.0.0.1:7600 status
//	selsync-ctl -addr 127.0.0.1:7600 events -job j-000001
//	selsync-ctl -addr 127.0.0.1:7600 cancel -job j-000001
//	selsync-ctl -addr 127.0.0.1:7600 drain
//
// submit prints the assigned job id; with -wait it additionally streams
// the job's events as JSONL until the final one and exits 0 only if the
// job completed (printing "result digest: <hex>", the bit-exact Result
// fingerprint — a preempted-then-resumed job prints the same digest as
// an uninterrupted run). events streams any job's history + live tail
// the same way.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"selsync/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7600", "daemon address")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: selsync-ctl [-addr host:port] <submit|status|events|cancel|drain> [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cl, err := serve.Dial(*addr)
	if err != nil {
		fail("dialing %s: %v", *addr, err)
	}
	defer cl.Close()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "submit":
		submit(cl, args)
	case "status":
		status(cl, args)
	case "events":
		events(cl, args)
	case "cancel":
		cancel(cl, args)
	case "drain":
		if err := cl.Drain(); err != nil {
			fail("%v", err)
		}
		fmt.Println("draining (daemon exits once running jobs park)")
	default:
		fail("unknown command %q (want submit|status|events|cancel|drain)", cmd)
	}
}

func submit(cl *serve.Client, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	name := fs.String("name", "", "human label for the job")
	tenant := fs.String("tenant", "default", "fair-share tenant")
	priority := fs.Int("priority", 0, "scheduling priority (higher runs first and preempts)")
	model := fs.String("model", "resnet", "workload: resnet | vgg | alexnet | transformer")
	method := fs.String("method", "selsync", "policy: bsp | selsync | fedavg | ssp | local, or a schedule like bsp:200,selsync")
	scheme := fs.String("scheme", "seldp", "IID partitioning: seldp | defdp")
	workers := fs.Int("workers", 8, "number of workers")
	steps := fs.Int("steps", 300, "training steps per worker")
	trainN := fs.Int("train", 6144, "training-set size")
	testN := fs.Int("test", 1024, "test-set size")
	seed := fs.Uint64("seed", 1, "run seed")
	delta := fs.Float64("delta", 0, "SelSync δ (0 = the workload's calibrated low threshold)")
	mode := fs.String("agg", "param", "SelSync aggregation: param | grad")
	c := fs.Float64("c", 1, "FedAvg participation fraction C")
	e := fs.Float64("e", 0.25, "FedAvg sync factor E")
	staleness := fs.Int("staleness", 100, "SSP staleness bound")
	codec := fs.String("codec", "", "wire payload codec: none | topk:F | q8 | q16 | partial:U[,D]")
	wait := fs.Bool("wait", false, "stream the job's events until it finishes; exit 0 only on completion")
	fs.Parse(args)
	if *mode != "param" && *mode != "grad" {
		fail("unknown -agg %q (want param or grad)", *mode)
	}

	spec := serve.JobSpec{
		Name: *name, Tenant: *tenant, Priority: *priority,
		Model: *model, Method: *method, Scheme: *scheme,
		Workers: *workers, TrainN: *trainN, TestN: *testN,
		MaxSteps: *steps, Seed: *seed,
		Delta: *delta, GradAgg: *mode == "grad",
		C: *c, E: *e, Staleness: *staleness,
		Codec: *codec,
	}
	id, err := cl.Submit(spec)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("submitted %s\n", id)
	if !*wait {
		return
	}
	final := streamEvents(cl, id, 0)
	if final == nil {
		fail("event stream for %s ended without a final event", id)
	}
	if final.Type != serve.EvDone {
		fail("job %s finished %s: %s", id, final.State, final.Err)
	}
	fmt.Printf("result digest: %s\n", final.Digest)
}

func status(cl *serve.Client, args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "print the raw status snapshot as JSON")
	fs.Parse(args)
	st, err := cl.Status()
	if err != nil {
		fail("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(st)
		return
	}
	fmt.Printf("slots %d/%d occupied, %d queued, %d parked, %d done, %d failed, %d canceled",
		st.Occupied, st.Slots, st.Queued, st.Parked, st.Done, st.Failed, st.Canceled)
	if st.Draining {
		fmt.Print(" [draining]")
	}
	fmt.Println()
	fmt.Printf("net: %d pushes, %d pulls, %d B recv, %d B sent\n",
		st.Net.Pushes, st.Net.Pulls, st.Net.Bytes.Recv, st.Net.Bytes.Sent)
	for _, t := range st.Tenants {
		fmt.Printf("tenant %-12s weight %.1f  served %6d steps  share %.3f  live %d\n",
			t.Tenant, t.Weight, t.ServedSteps, t.Share, t.Live)
	}
	for _, j := range st.Jobs {
		line := fmt.Sprintf("%s  %-8s  tenant %s  prio %d  step %d", j.Job, j.State, j.Tenant, j.Priority, j.Step)
		if j.Digest != "" {
			line += "  digest " + j.Digest
		}
		if j.Err != "" {
			line += "  err " + j.Err
		}
		fmt.Println(line)
	}
}

func events(cl *serve.Client, args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	job := fs.String("job", "", "job id")
	from := fs.Uint64("from", 0, "first event sequence number")
	fs.Parse(args)
	if *job == "" {
		fail("events needs -job")
	}
	if streamEvents(cl, *job, *from) == nil {
		fail("event stream for %s ended without a final event", *job)
	}
}

func cancel(cl *serve.Client, args []string) {
	fs := flag.NewFlagSet("cancel", flag.ExitOnError)
	job := fs.String("job", "", "job id")
	fs.Parse(args)
	if *job == "" {
		fail("cancel needs -job")
	}
	if err := cl.Cancel(*job); err != nil {
		fail("%v", err)
	}
	fmt.Printf("canceled %s\n", *job)
}

// streamEvents prints a job's events as JSONL and returns the final one
// (nil if the stream ended early, e.g. daemon shutdown).
func streamEvents(cl *serve.Client, id string, from uint64) *serve.WireEvent {
	enc := json.NewEncoder(os.Stdout)
	var final *serve.WireEvent
	err := cl.Events(id, from, func(ev serve.WireEvent) error {
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if ev.Final {
			cp := ev
			final = &cp
		}
		return nil
	})
	if err != nil {
		fail("%v", err)
	}
	return final
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
