// Command selsync-node runs one rank of a multi-process training job over
// the TCP transport, or launches a whole localhost job (-launch).
//
// Rank 0 coordinates: it plays the parameter server for every collective,
// drives the SSP event loop, and prints the run report. The other ranks
// host their block of workers and meet rank 0 at every synchronization.
//
// One rank per terminal:
//
//	selsync-node -rank 0 -peers 127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703,127.0.0.1:7704 \
//	    -model resnet -method selsync -workers 4 -steps 100
//	selsync-node -rank 1 -peers ... (and 2, 3)
//
// Or let rank -launch spawn the whole job as real OS processes:
//
//	selsync-node -launch 4 -model resnet -method selsync -workers 4 -steps 100
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"

	"selsync/internal/experiments"
	"selsync/internal/train"
)

func main() {
	model := flag.String("model", "resnet", "workload: resnet | vgg | alexnet | transformer")
	method := flag.String("method", "selsync", "policy: bsp | selsync | fedavg | ssp | local, or a schedule like bsp:200,selsync")
	workers := flag.Int("workers", 4, "global number of workers (divisible by the rank count)")
	steps := flag.Int("steps", 100, "training steps per worker")
	trainN := flag.Int("train", 2048, "training-set size")
	testN := flag.Int("test", 512, "test-set size")
	seed := flag.Uint64("seed", 1, "run seed")
	scheme := flag.String("scheme", "seldp", "IID partitioning: seldp | defdp")
	delta := flag.Float64("delta", 0, "SelSync δ (0 = the workload's calibrated low threshold)")
	mode := flag.String("agg", "param", "SelSync aggregation: param | grad")
	c := flag.Float64("c", 1, "FedAvg participation fraction C")
	e := flag.Float64("e", 0.25, "FedAvg sync factor E")
	staleness := flag.Int("staleness", 100, "SSP staleness bound")
	labelsPerWorker := flag.Int("noniid", 0, "labels per worker (0 = IID)")
	alpha := flag.Float64("alpha", 0, "data-injection α (0 = off)")
	beta := flag.Float64("beta", 0, "data-injection β")
	transport := flag.String("transport", "tcp", "communication backend: tcp | loopback")
	rank := flag.Int("rank", -1, "this process's rank (tcp transport)")
	peers := flag.String("peers", "", "comma-separated host:port per rank (tcp transport)")
	launch := flag.Int("launch", 0, "spawn this many ranks as OS processes on localhost and wait")
	progress := flag.Bool("progress", false, "stream live evaluation progress to stderr (rank 0)")
	ckptPath := flag.String("checkpoint", "", "save the run's final (or interrupted) state; on a mesh every rank writes <path>.rank<r>")
	resumePath := flag.String("resume", "", "resume from a checkpoint; on a mesh every rank reads <path>.rank<r>")
	flag.Parse()

	switch *mode {
	case "param", "grad":
	default:
		fail("unknown -agg %q (want param or grad)", *mode)
	}

	spec := experiments.RunSpec{
		Model: *model, Method: *method, Scheme: *scheme,
		Workers: *workers, TrainN: *trainN, TestN: *testN,
		MaxSteps: *steps, Seed: *seed,
		Delta: *delta, GradAgg: *mode == "grad",
		C: *c, E: *e, Staleness: *staleness,
		LabelsPerWorker: *labelsPerWorker, Alpha: *alpha, Beta: *beta,
	}

	if *launch > 0 {
		if *rank != -1 || *peers != "" {
			fail("-launch spawns all ranks itself; -rank/-peers cannot be combined with it")
		}
		if *transport != "tcp" {
			fail("-launch requires -transport tcp (loopback is single-process)")
		}
		if *workers%*launch != 0 {
			fail("-workers (%d) must be divisible by -launch (%d)", *workers, *launch)
		}
		os.Exit(launchJob(*launch, flag.CommandLine))
	}

	fabric, report, err := experiments.ParseTransport(*transport, *rank, *peers, *workers)
	if err != nil {
		fail("%v", err)
	}
	if fabric != nil {
		defer fabric.Close()
		spec.Fabric = fabric
	}

	// Checkpoints are rank-local: on a mesh each rank owns its hosted
	// workers' state, so every rank reads/writes its own file.
	rankPath := func(path string) string {
		if path == "" || fabric == nil {
			return path
		}
		return fmt.Sprintf("%s.rank%d", path, *rank)
	}

	var opts []train.Option
	var prog *train.ProgressObserver
	if *progress && report {
		prog = train.NewProgressObserver(os.Stderr)
		opts = append(opts, train.WithObserver(prog))
	}
	if *resumePath != "" {
		ck, err := train.LoadCheckpoint(rankPath(*resumePath))
		if err != nil {
			fail("loading -resume checkpoint: %v", err)
		}
		opts = append(opts, train.WithResume(ck))
	}

	job, wl, err := experiments.JobFor(spec, opts...)
	if err != nil {
		fail("%v", err)
	}
	if prog != nil {
		prog.SetPerplexity(wl.Factory.Spec.Perplexity)
	}

	// SIGINT cancels at the next step boundary. Caution on a mesh: every
	// rank must receive the signal (the -launch process group does) or
	// the surviving ranks block at their next collective.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()
	go func() {
		// Once cancellation is in flight, restore default SIGINT handling
		// so a second Ctrl-C force-kills (e.g. a mesh rank stuck in a
		// collective that never reaches a step boundary).
		<-ctx.Done()
		stopSig()
	}()

	res, err := job.Run(ctx)
	// A deadline behaves like Ctrl-C: Run still hands back a valid
	// partial Result worth printing and checkpointing.
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if err != nil && !interrupted {
		fail("%v", err)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "rank %d interrupted at step %d\n", *rank, res.Steps)
	}
	if *ckptPath != "" {
		ck, err := job.Checkpoint(context.Background())
		if err != nil {
			fail("checkpointing: %v", err)
		}
		if err := train.SaveCheckpoint(rankPath(*ckptPath), ck); err != nil {
			fail("saving checkpoint: %v", err)
		}
		fmt.Fprintf(os.Stderr, "checkpoint saved to %s\n", rankPath(*ckptPath))
	}
	if report {
		fmt.Println(res)
		fmt.Printf("sync steps: %d, local steps: %d, comm reduction vs BSP: %.1fx\n",
			res.SyncSteps, res.LocalSteps, res.CommReduction())
	} else {
		fmt.Printf("rank %d done\n", *rank)
	}
}

// launchJob reserves one localhost port per rank, spawns every rank as a
// child process of this same binary, and waits. Returns the exit code.
func launchJob(ranks int, fs *flag.FlagSet) int {
	peers, err := reservePorts(ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reserving ports: %v\n", err)
		return 1
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "locating binary: %v\n", err)
		return 1
	}

	// Forward every training flag as explicitly set or defaulted, minus
	// the launcher-only ones.
	var common []string
	fs.VisitAll(func(f *flag.Flag) {
		switch f.Name {
		case "launch", "rank", "peers":
			return
		}
		common = append(common, "-"+f.Name+"="+f.Value.String())
	})

	fmt.Printf("launching %d ranks: %s\n", ranks, strings.Join(peers, " "))
	cmds := make([]*exec.Cmd, ranks)
	for r := 0; r < ranks; r++ {
		args := append([]string{
			"-rank=" + strconv.Itoa(r),
			"-peers=" + strings.Join(peers, ","),
		}, common...)
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "starting rank %d: %v\n", r, err)
			for _, running := range cmds[:r] {
				running.Process.Kill()
			}
			return 1
		}
		cmds[r] = cmd
	}
	code := 0
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "rank %d: %v\n", r, err)
			code = 1
		}
	}
	return code
}

// reservePorts finds n free localhost ports by binding and releasing them.
// The children re-bind moments later; on a quiet machine the addresses
// stay free for that window.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
