// Command selsync-node runs one rank of a multi-process training job over
// the TCP transport, or launches a whole localhost job (-launch).
//
// Rank 0 coordinates: it plays the parameter server for every collective,
// drives the SSP event loop, and prints the run report. The other ranks
// host their block of workers and meet rank 0 at every synchronization.
//
// One rank per terminal:
//
//	selsync-node -rank 0 -peers 127.0.0.1:7701,127.0.0.1:7702,127.0.0.1:7703,127.0.0.1:7704 \
//	    -model resnet -method selsync -workers 4 -steps 100
//	selsync-node -rank 1 -peers ... (and 2, 3)
//
// Or let rank -launch spawn the whole job as real OS processes:
//
//	selsync-node -launch 4 -model resnet -method selsync -workers 4 -steps 100
//
// Fault tolerance: with -supervise (plus -checkpoint and -ckpt-every) the
// launcher babysits the gang — a rank that dies from a fabric fault or an
// injected crash triggers a gang restart of every rank from the newest
// auto-checkpoint step all ranks persisted, reproducing the uninterrupted
// run bit for bit:
//
//	selsync-node -launch 4 -supervise -checkpoint /tmp/ck -ckpt-every 25 \
//	    -crash-rank 2 -crash-at-step 100 -digest ...
//
// Elastic membership: with -membership the ranks execute a scripted
// leave/join plan at step boundaries. A rank whose leave fires exits with
// code 4; relaunching it with -join dials back into the running mesh,
// receives the live state transfer from rank 0, and re-enters at the
// plan's join boundary. Under -supervise an exit-4 rank is relaunched
// alone with -join instead of gang-restarting the whole job:
//
//	selsync-node -launch 4 -supervise -membership "leave=2@40;join=2@80" \
//	    -checkpoint /tmp/ck -ckpt-every 25 -digest ...
//
// Exit codes: 0 success, 2 configuration or I/O failure, 3 fabric fault
// (typed comm error; partial result salvaged), 4 planned membership
// departure (relaunch with -join to re-enter), 7 injected rank crash.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"selsync/internal/comm"
	"selsync/internal/experiments"
	"selsync/internal/train"
)

const (
	exitFail  = 2 // configuration or I/O failure
	exitFault = 3 // fabric fault: typed comm error, partial result salvaged
	exitLeft  = 4 // planned membership departure: relaunch with -join to re-enter
	exitCrash = 7 // whole-rank crash (chaos schedule or -crash-at-step)
)

func main() {
	model := flag.String("model", "resnet", "workload: resnet | vgg | alexnet | transformer")
	method := flag.String("method", "selsync", "policy: bsp | selsync | fedavg | ssp | local, or a schedule like bsp:200,selsync")
	workers := flag.Int("workers", 4, "global number of workers (divisible by the rank count)")
	steps := flag.Int("steps", 100, "training steps per worker")
	trainN := flag.Int("train", 2048, "training-set size")
	testN := flag.Int("test", 512, "test-set size")
	seed := flag.Uint64("seed", 1, "run seed")
	scheme := flag.String("scheme", "seldp", "IID partitioning: seldp | defdp")
	delta := flag.Float64("delta", 0, "SelSync δ (0 = the workload's calibrated low threshold)")
	mode := flag.String("agg", "param", "SelSync aggregation: param | grad")
	c := flag.Float64("c", 1, "FedAvg participation fraction C")
	e := flag.Float64("e", 0.25, "FedAvg sync factor E")
	staleness := flag.Int("staleness", 100, "SSP staleness bound")
	labelsPerWorker := flag.Int("noniid", 0, "labels per worker (0 = IID)")
	alpha := flag.Float64("alpha", 0, "data-injection α (0 = off)")
	beta := flag.Float64("beta", 0, "data-injection β")
	codec := flag.String("codec", "", "wire payload codec: none | topk:F | q8 | q16 | partial:U[,D] (default none)")
	overlap := flag.Bool("overlap", false, "overlap gradient collectives with the backward pass (bucketed sync-as-computed)")
	transport := flag.String("transport", "tcp", "communication backend: tcp | loopback")
	rank := flag.Int("rank", -1, "this process's rank (tcp transport)")
	peers := flag.String("peers", "", "comma-separated host:port per rank (tcp transport)")
	launch := flag.Int("launch", 0, "spawn this many ranks as OS processes on localhost and wait")
	progress := flag.Bool("progress", false, "stream live evaluation progress to stderr (rank 0)")
	ckptPath := flag.String("checkpoint", "", "save the run's final (or interrupted) state; on a mesh every rank writes <path>.rank<r>")
	resumePath := flag.String("resume", "", "resume from a checkpoint; on a mesh every rank reads <path>.rank<r>")
	ckptEvery := flag.Int("ckpt-every", 0, "also auto-save a checkpoint every N steps to <checkpoint>.rank<r>.s<step> (requires -checkpoint)")
	supervise := flag.Bool("supervise", false, "with -launch: gang-restart the job from its auto-checkpoints when a rank dies (requires -checkpoint and -ckpt-every)")
	maxRestarts := flag.Int("max-restarts", 2, "with -supervise: gang restarts before giving up")
	chaos := flag.String("chaos", "", "deterministic fault-plan script injected in front of the TCP endpoint, e.g. \"seed=7;delay=100us..1ms;drop=0.01\"")
	opTimeout := flag.Duration("op-timeout", 0, "bound every collective receive (0 = unbounded); a rank blocked on a dead peer fails instead of hanging")
	crashAtStep := flag.Int("crash-at-step", 0, "fault injection: exit(7) when -crash-rank completes this 0-based step")
	crashRank := flag.Int("crash-rank", 0, "the rank -crash-at-step kills")
	digest := flag.Bool("digest", false, "print the run's result digest (rank 0) for bit-identity checks")
	membership := flag.String("membership", "", "elastic-membership plan, e.g. \"leave=2@40;join=2@80\" (see train.ParseMembershipPlan)")
	quorum := flag.Int("quorum", 0, "live-rank continuation threshold (0 = plan or default ⌈N/2⌉+1)")
	join := flag.Bool("join", false, "rejoin a running mesh as -rank: dial back in, receive rank 0's state transfer, re-enter at the plan's join boundary")
	heartbeat := flag.Duration("heartbeat", 0, "liveness beacon interval; silence past 4 intervals marks a peer suspect (0 = off)")
	netStats := flag.Bool("net-stats", false, "print per-rank transport counters (frames/bytes, redials, timeouts per peer) at end of run")
	flag.Parse()

	switch *mode {
	case "param", "grad":
	default:
		fail("unknown -agg %q (want param or grad)", *mode)
	}
	if *ckptEvery > 0 && *ckptPath == "" {
		fail("-ckpt-every requires -checkpoint")
	}
	if *supervise {
		if *launch <= 0 {
			fail("-supervise requires -launch")
		}
		if *ckptPath == "" || *ckptEvery <= 0 {
			fail("-supervise requires -checkpoint and -ckpt-every (the gang-restart source)")
		}
	}
	if *join {
		if *membership == "" {
			fail("-join requires -membership (the plan names the join boundary to re-enter at)")
		}
		if *launch > 0 {
			fail("-join re-enters one rank; it cannot be combined with -launch")
		}
	}

	spec := experiments.RunSpec{
		Model: *model, Method: *method, Scheme: *scheme,
		Workers: *workers, TrainN: *trainN, TestN: *testN,
		MaxSteps: *steps, Seed: *seed,
		Delta: *delta, GradAgg: *mode == "grad",
		C: *c, E: *e, Staleness: *staleness,
		LabelsPerWorker: *labelsPerWorker, Alpha: *alpha, Beta: *beta,
		Membership: *membership, Quorum: *quorum,
		Codec: *codec, Overlap: *overlap,
	}

	if *launch > 0 {
		if *rank != -1 || *peers != "" {
			fail("-launch spawns all ranks itself; -rank/-peers cannot be combined with it")
		}
		if *transport != "tcp" {
			fail("-launch requires -transport tcp (loopback is single-process)")
		}
		if *workers%*launch != 0 {
			fail("-workers (%d) must be divisible by -launch (%d)", *workers, *launch)
		}
		if *supervise {
			os.Exit(superviseJob(*launch, flag.CommandLine, *ckptPath, *maxRestarts))
		}
		os.Exit(launchJob(*launch, flag.CommandLine))
	}

	fabric, report, err := experiments.ParseTransportOpts(*transport, *rank, *peers, *workers,
		experiments.TransportOptions{
			Chaos:     *chaos,
			OpTimeout: *opTimeout,
			Heartbeat: *heartbeat,
			Rejoin:    *join,
			OnCrash: func() {
				// A scheduled whole-rank crash: die the way a killed process
				// does — no goodbye to the peers, no checkpoint.
				fmt.Fprintf(os.Stderr, "rank %d: scheduled chaos crash\n", *rank)
				os.Exit(exitCrash)
			},
		})
	if err != nil {
		fail("%v", err)
	}
	if fabric != nil {
		defer fabric.Close()
		spec.Fabric = fabric
	}

	// Checkpoints are rank-local: on a mesh each rank owns its hosted
	// workers' state, so every rank reads/writes its own file.
	rankPath := func(path string) string {
		if path == "" || fabric == nil {
			return path
		}
		return fmt.Sprintf("%s.rank%d", path, *rank)
	}

	var opts []train.Option
	if *join {
		// A rejoining rank skips initial training: it blocks on rank 0's
		// live state transfer and re-enters at the plan's join boundary.
		opts = append(opts, train.WithLateJoin())
	}
	var prog *train.ProgressObserver
	if *progress && report {
		prog = train.NewProgressObserver(os.Stderr)
		opts = append(opts, train.WithObserver(prog))
	}
	if *resumePath != "" {
		ck, err := train.LoadCheckpoint(rankPath(*resumePath))
		if err != nil {
			fail("loading -resume checkpoint: %v", err)
		}
		fmt.Fprintf(os.Stderr, "resuming from checkpoint step %d (%s)\n", ck.Step, rankPath(*resumePath))
		opts = append(opts, train.WithResume(ck))
	}
	if *ckptEvery > 0 {
		base := rankPath(*ckptPath)
		opts = append(opts, train.WithAutoCheckpoint(*ckptEvery, func(step int, ck *train.Checkpoint) error {
			if ck.Dirty {
				return nil // emergency snapshots are not restart sources
			}
			return train.SaveCheckpoint(fmt.Sprintf("%s.s%d", base, step), ck)
		}))
	}
	if *crashAtStep > 0 && *rank == *crashRank {
		opts = append(opts, train.WithObserver(train.ObserverFunc(func(ev train.Event) {
			if se, ok := ev.(train.StepEvent); ok && se.Step >= *crashAtStep {
				fmt.Fprintf(os.Stderr, "rank %d: injected crash at step %d\n", *rank, se.Step)
				os.Exit(exitCrash)
			}
		})))
	}

	job, wl, err := experiments.JobFor(spec, opts...)
	if err != nil {
		fail("%v", err)
	}
	if prog != nil {
		prog.SetPerplexity(wl.Factory.Spec.Perplexity)
	}

	// SIGINT cancels at the next step boundary. Caution on a mesh: every
	// rank must receive the signal (the -launch process group does) or
	// the surviving ranks block at their next collective.
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSig()
	go func() {
		// Once cancellation is in flight, restore default SIGINT handling
		// so a second Ctrl-C force-kills (e.g. a mesh rank stuck in a
		// collective that never reaches a step boundary).
		<-ctx.Done()
		stopSig()
	}()

	res, err := job.Run(ctx)
	if errors.Is(err, train.ErrRankLeft) {
		// The membership plan removed this rank: its workers were adopted by
		// rank 0, so there is no state to salvage here. Exit with the
		// departure code; the supervisor relaunches the rank with -join.
		step := 0
		if res != nil {
			step = res.Steps
		}
		printNetStats(fabric, *rank, *netStats)
		fmt.Fprintf(os.Stderr, "rank %d: left the mesh at step %d per the membership plan\n", *rank, step)
		os.Exit(exitLeft)
	}
	// A deadline behaves like Ctrl-C: Run still hands back a valid
	// partial Result worth printing and checkpointing.
	interrupted := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	var pe *comm.PeerError
	if err != nil && !interrupted && errors.As(err, &pe) {
		// The hardened fabric path: a peer failure surfaced as a typed
		// error with a partial Result. Salvage what we can and exit with
		// the recoverable code so a supervisor gang-restarts the job.
		step := 0
		if res != nil {
			step = res.Steps
		}
		fmt.Fprintf(os.Stderr, "rank %d: fabric fault at step %d: %v\n", *rank, step, err)
		if *ckptPath != "" {
			if ck := job.EmergencyCheckpoint(); ck != nil {
				path := rankPath(*ckptPath) + ".emergency"
				if serr := train.SaveCheckpoint(path, ck); serr != nil {
					fmt.Fprintf(os.Stderr, "saving emergency checkpoint: %v\n", serr)
				} else {
					fmt.Fprintf(os.Stderr, "emergency checkpoint saved to %s\n", path)
				}
			}
		}
		os.Exit(exitFault)
	}
	if err != nil && !interrupted {
		fail("%v", err)
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "rank %d interrupted at step %d\n", *rank, res.Steps)
	}
	if *ckptPath != "" {
		ck, err := job.Checkpoint(context.Background())
		if err != nil {
			fail("checkpointing: %v", err)
		}
		if err := train.SaveCheckpoint(rankPath(*ckptPath), ck); err != nil {
			fail("saving checkpoint: %v", err)
		}
		fmt.Fprintf(os.Stderr, "checkpoint saved to %s\n", rankPath(*ckptPath))
	}
	printNetStats(fabric, *rank, *netStats)
	if report {
		fmt.Println(res)
		fmt.Printf("sync steps: %d, local steps: %d, comm reduction vs BSP: %.1fx\n",
			res.SyncSteps, res.LocalSteps, res.CommReduction())
		if *digest {
			fmt.Printf("digest: %s\n", res.Digest())
		}
	} else {
		fmt.Printf("rank %d done\n", *rank)
	}
}

// printNetStats reports the rank's physical transport counters — including
// the fault-path ones (reconnect attempts, deadline expiries) that make a
// degraded run diagnosable — when -net-stats asks for them, or
// unconditionally once any redial/timeout fired.
func printNetStats(fabric comm.Fabric, rank int, always bool) {
	m, ok := fabric.(*comm.Mesh)
	if !ok {
		return
	}
	ns := m.Endpoint().NetStats()
	if !always && ns.Redials == 0 && ns.Timeouts == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "rank %d net: sent %d frames/%d B, recv %d frames/%d B, redials %d, timeouts %d\n",
		rank, ns.FramesSent, ns.BytesSent, ns.FramesRecv, ns.BytesRecv, ns.Redials, ns.Timeouts)
	for peer, p := range ns.PerPeer {
		if p.Redials > 0 || p.Timeouts > 0 {
			fmt.Fprintf(os.Stderr, "rank %d net: peer %d: redials %d, timeouts %d\n",
				rank, peer, p.Redials, p.Timeouts)
		}
	}
}

// launchJob reserves one localhost port per rank, spawns every rank as a
// child process of this same binary, and waits. Returns the exit code.
func launchJob(ranks int, fs *flag.FlagSet) int {
	codes, ok := runGang(ranks, fs, nil, false)
	if !ok {
		return 1
	}
	code := 0
	for r, c := range codes {
		if c != 0 {
			fmt.Fprintf(os.Stderr, "rank %d exited with code %d\n", r, c)
			code = 1
		}
	}
	return code
}

// superviseJob is launchJob with a babysitter: when ranks die with a
// recoverable code — an injected crash (7) or a fabric fault (3) — it
// computes the newest auto-checkpoint step every rank persisted, stages
// those files as the gang's resume source, and relaunches all ranks from it
// with the crash injection disabled (the scripted fault fires once). Any
// other nonzero exit, or running out of restarts, gives up.
func superviseJob(ranks int, fs *flag.FlagSet, ckptBase string, maxRestarts int) int {
	for attempt := 0; ; attempt++ {
		var overrides map[string]string
		if attempt > 0 {
			step, err := latestCommonStep(ckptBase, ranks)
			if err != nil {
				fmt.Fprintf(os.Stderr, "supervisor: %v\n", err)
				return 1
			}
			resumeBase := fmt.Sprintf("%s.recover%d", ckptBase, attempt)
			for r := 0; r < ranks; r++ {
				src := fmt.Sprintf("%s.rank%d.s%d", ckptBase, r, step)
				if err := copyFile(src, fmt.Sprintf("%s.rank%d", resumeBase, r)); err != nil {
					fmt.Fprintf(os.Stderr, "supervisor: staging restart checkpoint: %v\n", err)
					return 1
				}
			}
			fmt.Printf("supervisor: gang restart %d/%d from step %d\n", attempt, maxRestarts, step)
			overrides = map[string]string{
				"resume":        resumeBase,
				"crash-at-step": "0",
				"chaos":         "",
			}
		}
		// Elastic membership first: a rank that exits with the departure
		// code is relaunched alone with -join inside runGang — far cheaper
		// than tearing down the survivors for a gang restart.
		codes, ok := runGang(ranks, fs, overrides, true)
		if !ok {
			return 1
		}
		recoverable, code := false, 0
		for r, c := range codes {
			switch c {
			case 0:
			case exitFault, exitCrash:
				fmt.Fprintf(os.Stderr, "supervisor: rank %d exited with recoverable code %d\n", r, c)
				recoverable = true
				if code == 0 {
					code = c
				}
			default:
				fmt.Fprintf(os.Stderr, "supervisor: rank %d exited with unrecoverable code %d\n", r, c)
				return c
			}
		}
		if !recoverable {
			if attempt > 0 {
				fmt.Printf("supervisor: job recovered after %d restart(s)\n", attempt)
			}
			return 0
		}
		if attempt >= maxRestarts {
			fmt.Fprintf(os.Stderr, "supervisor: giving up after %d restart(s)\n", attempt)
			return code
		}
	}
}

// runGang spawns every rank as a child of this same binary on freshly
// reserved localhost ports, forwarding every training flag (as set or
// defaulted, with overrides applied) minus the launcher-only ones, and
// waits for all of them. Returns each rank's exit code.
//
// With rejoin, a rank exiting with the planned-departure code (4) is
// relaunched alone with -join while the survivors keep training: the
// replacement dials back into the still-running mesh and catches rank 0's
// state transfer at the plan's join boundary. Its exit code replaces the
// departed rank's.
func runGang(ranks int, fs *flag.FlagSet, overrides map[string]string, rejoin bool) ([]int, bool) {
	peers, err := reservePorts(ranks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reserving ports: %v\n", err)
		return nil, false
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "locating binary: %v\n", err)
		return nil, false
	}

	var common []string
	fs.VisitAll(func(f *flag.Flag) {
		switch f.Name {
		case "launch", "supervise", "max-restarts", "rank", "peers", "join":
			return
		}
		v := f.Value.String()
		if ov, ok := overrides[f.Name]; ok {
			v = ov
		}
		common = append(common, "-"+f.Name+"="+v)
	})
	spawn := func(r int, extra ...string) (*exec.Cmd, error) {
		args := append([]string{
			"-rank=" + strconv.Itoa(r),
			"-peers=" + strings.Join(peers, ","),
		}, common...)
		args = append(args, extra...)
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		return cmd, cmd.Start()
	}
	wait := func(r int, cmd *exec.Cmd) int {
		if err := cmd.Wait(); err != nil {
			var xe *exec.ExitError
			if errors.As(err, &xe) {
				return xe.ExitCode()
			}
			fmt.Fprintf(os.Stderr, "rank %d: %v\n", r, err)
			return 1
		}
		return 0
	}

	fmt.Printf("launching %d ranks: %s\n", ranks, strings.Join(peers, " "))
	cmds := make([]*exec.Cmd, ranks)
	for r := 0; r < ranks; r++ {
		cmd, err := spawn(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starting rank %d: %v\n", r, err)
			for _, running := range cmds[:r] {
				running.Process.Kill()
			}
			return nil, false
		}
		cmds[r] = cmd
	}
	codes := make([]int, ranks)
	var wg sync.WaitGroup
	for r, cmd := range cmds {
		wg.Add(1)
		go func(r int, cmd *exec.Cmd) {
			defer wg.Done()
			code := wait(r, cmd)
			if rejoin && code == exitLeft {
				// The survivors are still running toward the plan's join
				// boundary; put the departed rank back before they get there.
				fmt.Printf("supervisor: rank %d left the mesh; relaunching it with -join\n", r)
				rc, err := spawn(r, "-join=true")
				if err != nil {
					fmt.Fprintf(os.Stderr, "supervisor: relaunching rank %d: %v\n", r, err)
					codes[r] = 1
					return
				}
				code = wait(r, rc)
			}
			codes[r] = code
		}(r, cmd)
	}
	wg.Wait()
	return codes, true
}

// latestCommonStep scans every rank's auto-checkpoint files
// (<base>.rank<r>.s<step>) and returns the newest step all ranks persisted
// — the gang-restart line: resuming anywhere later would leave some rank
// without a matching checkpoint.
func latestCommonStep(base string, ranks int) (int, error) {
	count := make(map[int]int)
	for r := 0; r < ranks; r++ {
		matches, err := filepath.Glob(fmt.Sprintf("%s.rank%d.s*", base, r))
		if err != nil {
			return 0, err
		}
		seen := make(map[int]bool)
		for _, m := range matches {
			step, err := strconv.Atoi(m[strings.LastIndex(m, ".s")+2:])
			if err != nil {
				continue // not a step file (e.g. an .emergency sibling)
			}
			if !seen[step] {
				seen[step] = true
				count[step]++
			}
		}
	}
	best := -1
	for step, n := range count {
		if n == ranks && step > best {
			best = step
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("no auto-checkpoint step common to all %d ranks under %s", ranks, base)
	}
	return best, nil
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

// reservePorts finds n free localhost ports by binding and releasing them.
// The children re-bind moments later; on a quiet machine the addresses
// stay free for that window.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(exitFail)
}
