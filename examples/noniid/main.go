// Non-IID training with randomized data-injection: each of 10 workers
// holds a single class label (the paper's hardest skew). Plain FedAvg
// oscillates; SelSync with data-injection (α, β) shares a few samples per
// step and recovers most of the lost accuracy (paper §III-E and Fig. 12).
//
//	go run ./examples/noniid
package main

import (
	"fmt"

	"selsync"
)

func main() {
	const workers = 10
	wload := selsync.WorkloadForModel("resnet", 4096, 1024, 5)
	base := selsync.Config{
		Model:     selsync.ResNetLite(10, 4),
		Workers:   workers,
		Batch:     32,
		Seed:      5,
		Train:     wload.Train,
		Test:      wload.Test,
		MaxSteps:  200,
		EvalEvery: 40,
	}

	// FedAvg on 1-label-per-worker data, no injection. E=0.5 gives ≈6
	// local steps between rounds at this dataset size — the same local
	// phase length the paper's E=0.1 implies at its 150-step epochs.
	fedCfg := base
	fedCfg.NonIID = &selsync.NonIID{LabelsPerWorker: 1}
	fed := selsync.RunFedAvg(fedCfg, selsync.FedAvgOptions{C: 1, E: 0.5})

	// SelSync with two data-injection configurations. Worker batches
	// shrink to b′ = b/(1+αβN) so the pooled batch stays at b (Eqn. 3).
	run := func(alpha, beta, delta float64) *selsync.Result {
		cfg := base
		cfg.NonIID = &selsync.NonIID{
			LabelsPerWorker: 1,
			Injection:       &selsync.Injection{Alpha: alpha, Beta: beta},
		}
		return selsync.RunSelSync(cfg, selsync.SelSyncOptions{Delta: delta, Mode: selsync.ParamAgg})
	}
	mild := run(0.5, 0.5, 0.18)
	rich := run(0.75, 0.75, 0.18)

	fmt.Println("non-IID CIFAR-10-like, 1 label per worker, 10 workers:")
	fmt.Printf("  FedAvg (no injection):        best acc %.2f%%\n", fed.BestMetric)
	fmt.Printf("  SelSync + injection (.5,.5):  best acc %.2f%%\n", mild.BestMetric)
	fmt.Printf("  SelSync + injection (.75,.75): best acc %.2f%%\n", rich.BestMetric)
	inj := selsync.Injection{Alpha: 0.5, Beta: 0.5}
	fmt.Printf("\nEqn. 3: with b=32, N=%d, (α,β)=(0.5,0.5) the local batch shrinks to b′=%d\n",
		workers, inj.AdjustedBatch(32, workers))
}
