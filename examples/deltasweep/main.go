// Delta sweep: slide the SelSync significance threshold δ from 0 (pure
// BSP) to far beyond the largest observed Δ(g_i) (pure local SGD) and
// watch the trade-off between communication and accuracy — the paper's
// Fig. 6 intuition, measured.
//
//	go run ./examples/deltasweep
package main

import (
	"fmt"

	"selsync"
)

func main() {
	wload := selsync.WorkloadForModel("vgg", 4096, 1024, 7)
	cfg := selsync.Config{
		Model:     selsync.VGGLite(100),
		Workers:   8,
		Batch:     16,
		Seed:      7,
		Train:     wload.Train,
		Test:      wload.Test,
		Scheme:    selsync.SelDP,
		MaxSteps:  240,
		EvalEvery: 40,
	}

	fmt.Println("δ        LSSR    sync  local  simtime(s)  best acc%")
	for _, delta := range []float64{0, 0.02, 0.055, 0.075, 0.15, 1e9} {
		res := selsync.RunSelSync(cfg, selsync.SelSyncOptions{
			Delta: delta,
			Mode:  selsync.ParamAgg,
		})
		label := fmt.Sprintf("%.3g", delta)
		if delta == 0 {
			label = "0 (=BSP)"
		} else if delta >= 1e9 {
			label = "∞ (=local)"
		}
		fmt.Printf("%-8s %.3f  %-5d %-6d %-11.1f %.2f\n",
			label, res.LSSR, res.SyncSteps, res.LocalSteps, res.SimTime, res.BestMetric)
	}
	fmt.Println("\nδ=0 buys maximum statistical efficiency at maximum cost;")
	fmt.Println("very large δ is cheap but lets replicas drift; the sweet spot sits between.")
}
