// Quickstart: train the residual classifier with SelSync on a simulated
// 8-worker cluster and compare against the BSP baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"selsync"
)

func main() {
	// A CIFAR-10-like synthetic workload: 10-class Gaussian images with a
	// real train/test generalization gap.
	wload := selsync.WorkloadForModel("resnet", 4096, 1024, 1)

	cfg := selsync.Config{
		Model:   selsync.ResNetLite(10, 4),
		Workers: 8,
		Batch:   16,
		Seed:    1,
		Train:   wload.Train,
		Test:    wload.Test,
		// SelDP: every worker sees the whole dataset in a rotated order,
		// the partitioning SelSync introduces for semi-synchronous runs.
		Scheme:    selsync.SelDP,
		MaxSteps:  200,
		EvalEvery: 40,
	}

	fmt.Println("training with BSP (synchronize every step)...")
	bsp := selsync.RunBSP(cfg)

	fmt.Println("training with SelSync (synchronize only significant updates)...")
	sel := selsync.RunSelSync(cfg, selsync.SelSyncOptions{
		Delta: 0.18,             // significance threshold on Δ(g_i)
		Mode:  selsync.ParamAgg, // average parameters during sync phases
	})

	fmt.Println()
	fmt.Println(bsp)
	fmt.Println(sel)
	fmt.Printf("\nSelSync skipped %.0f%% of synchronizations (LSSR=%.2f, %.1fx less communication)\n",
		sel.LSSR*100, sel.LSSR, sel.CommReduction())
	fmt.Printf("simulated training time: BSP %.0fs vs SelSync %.0fs (%.2fx faster)\n",
		bsp.SimTime, sel.SimTime, bsp.SimTime/sel.SimTime)
	fmt.Printf("final accuracy: BSP %.2f%% vs SelSync %.2f%%\n", bsp.BestMetric, sel.BestMetric)
}
