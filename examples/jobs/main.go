// Jobs: the cancellable, observable, resumable run API. This example
// trains SelSync as a Job three ways over the same configuration:
//
//  1. watched — a progress observer streams evaluations and phase
//     switches while a JSONL sink records the full typed event stream;
//
//  2. interrupted — an observer cancels the context at step 100 (the
//     deterministic stand-in for Ctrl-C), yielding a partial Result, and
//     the job is checkpointed;
//
//  3. resumed — a new job continues from the checkpoint and finishes with
//     a Result bit-identical to an uninterrupted run (verified here by
//     digest).
//
//     go run ./examples/jobs
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"selsync"
)

func main() {
	wload := selsync.WorkloadForModel("resnet", 4096, 1024, 1)
	cfg := selsync.Config{
		Model: selsync.ResNetLite(10, 4), Workers: 8, Batch: 16, Seed: 1,
		Train: wload.Train, Test: wload.Test, Scheme: selsync.SelDP,
		MaxSteps: 200, EvalEvery: 40,
	}
	policy := func() selsync.SyncPolicy {
		// Fresh per job: policies carry per-run state.
		return &selsync.SwitchPolicy{
			From:   selsync.BSPPolicy{}, // synchronous warmup...
			To:     selsync.SelSyncPolicy{Delta: 0.18, Mode: selsync.ParamAgg},
			AtStep: 60, // ...then selective synchronization
		}
	}

	// 1. A watched run: live progress on stderr, full event log on disk.
	events, err := os.Create("events.jsonl")
	if err != nil {
		panic(err)
	}
	defer events.Close()
	fmt.Println("=== watched run (progress + events.jsonl) ===")
	watched, err := selsync.NewJob(cfg, policy(),
		selsync.WithObserver(selsync.NewProgressObserver(os.Stderr)),
		selsync.WithObserver(selsync.NewJSONLObserver(events)),
	).Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println(watched)

	// 2. An interrupted run: cancel deterministically after step 100.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job := selsync.NewJob(cfg, policy(),
		selsync.WithObserver(selsync.ObserverFunc(func(e selsync.Event) {
			if se, ok := e.(selsync.StepEvent); ok && se.Step == 100 {
				cancel()
			}
		})))
	partial, err := job.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		panic(fmt.Sprintf("expected cancellation, got %v", err))
	}
	fmt.Printf("\n=== interrupted at step %d (partial, %d evals so far) ===\n",
		partial.Steps, len(partial.History))
	ck, err := job.Checkpoint(context.Background())
	if err != nil {
		panic(err)
	}
	if err := selsync.SaveCheckpoint("run.ckpt", ck); err != nil {
		panic(err)
	}

	// 3. Resume from the file and finish. Same Config, fresh policy.
	loaded, err := selsync.LoadCheckpoint("run.ckpt")
	if err != nil {
		panic(err)
	}
	resumed, err := selsync.NewJob(cfg, policy(), selsync.WithResume(loaded)).Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("\n=== resumed from step %d to completion ===\n", loaded.Step)
	fmt.Println(resumed)

	if resumed.Digest() == watched.Digest() {
		fmt.Println("\ninterrupt → checkpoint → resume reproduced the uninterrupted run bit for bit ✓")
	} else {
		fmt.Println("\nDIGEST MISMATCH — resume is not bit-identical (this is a bug)")
	}
}
