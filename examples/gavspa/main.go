// Gradient vs parameter aggregation: the paper's §III-C ablation. Under
// semi-synchronous training, averaging gradients leaves diverged replicas
// diverged, while averaging parameters restores one consistent global
// state at every synchronization — and generalizes better once the
// learning-rate schedule decays.
//
//	go run ./examples/gavspa
package main

import (
	"fmt"
	"strings"

	"selsync"
)

func main() {
	wload := selsync.WorkloadForModel("resnet", 4096, 1024, 9)
	cfg := selsync.Config{
		Model:     selsync.ResNetLite(10, 4),
		Workers:   8,
		Batch:     16,
		Seed:      9,
		Train:     wload.Train,
		Test:      wload.Test,
		Scheme:    selsync.SelDP,
		MaxSteps:  240,
		EvalEvery: 40,
	}
	const delta = 0.18

	pa := selsync.RunSelSync(cfg, selsync.SelSyncOptions{Delta: delta, Mode: selsync.ParamAgg})
	ga := selsync.RunSelSync(cfg, selsync.SelSyncOptions{Delta: delta, Mode: selsync.GradAgg})

	fmt.Printf("SelSync δ=%.2f on %s, 8 workers\n\n", delta, pa.Model)
	fmt.Println("mode       LSSR    best acc%  history (step → acc%)")
	for _, res := range []*selsync.Result{pa, ga} {
		fmt.Printf("%-10s %.3f  %-9.2f ", modeName(res), res.LSSR, res.BestMetric)
		for _, pt := range res.History {
			fmt.Printf(" %d→%.1f", pt.Step, pt.Metric)
		}
		fmt.Println()
	}
	fmt.Println("\nParameter aggregation bounds replica divergence at every sync;")
	fmt.Println("gradient aggregation applies a shared update to already-diverged replicas.")
}

// modeName shortens "SelSync(δ=0.18,ParamAgg)"-style method strings.
func modeName(r *selsync.Result) string {
	if strings.Contains(r.Method, "ParamAgg") {
		return "PA"
	}
	return "GA"
}
