// Example distributed: a 4-worker SelSync(δ) job over the TCP transport,
// with the four ranks running here as goroutines for a self-contained
// program — each builds its own datasets, its own model replica and its
// own TCP mesh endpoint, exactly what four OS processes would do (use
// cmd/selsync-node -launch 4 for the real multi-process form).
//
// The punchline: every rank's Result — and the single-process loopback
// run of the same seed — agree bit for bit, because the mesh reduces in
// worker-id order with the same deterministic kernels the loopback fabric
// uses. Selective synchronization survives the move onto real sockets
// unchanged.
package main

import (
	"fmt"
	"net"
	"reflect"
	"sync"

	"selsync"
)

const (
	workers = 4
	ranks   = 4
	seed    = 7
)

func runOne(fabric selsync.Fabric) *selsync.Result {
	wload := selsync.WorkloadForModel("resnet", 2048, 512, seed)
	cfg := selsync.Config{
		Model: selsync.ResNetLite(10, 6), Workers: workers, Batch: 16, Seed: seed,
		Train: wload.Train, Test: wload.Test, Scheme: selsync.SelDP,
		MaxSteps: 40, EvalEvery: 10,
		Fabric: fabric,
	}
	return selsync.RunSelSync(cfg, selsync.SelSyncOptions{Delta: 0.04, Mode: selsync.ParamAgg})
}

func main() {
	// Reserve one localhost port per rank by binding and releasing it,
	// the same dance selsync-node -launch does for real processes. The
	// ranks re-bind moments later (DialTCPFabric retries briefly); on a
	// quiet machine the addresses stay free for that window.
	peers := make([]string, ranks)
	for r := range peers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		peers[r] = ln.Addr().String()
		ln.Close()
	}

	results := make([]*selsync.Result, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fabric, err := selsync.DialTCPFabric(r, peers, workers)
			if err != nil {
				panic(fmt.Sprintf("rank %d: %v", r, err))
			}
			defer fabric.Close()
			results[r] = runOne(fabric)
		}(r)
	}
	wg.Wait()

	fmt.Println("TCP rank 0:", results[0])
	loopback := runOne(nil)
	fmt.Println("loopback:  ", loopback)

	agree := true
	for _, res := range results[1:] {
		agree = agree && reflect.DeepEqual(res, results[0])
	}
	fmt.Printf("all TCP ranks bit-identical:      %v\n", agree)
	fmt.Printf("TCP bit-identical to loopback:    %v\n", reflect.DeepEqual(results[0], loopback))
	fmt.Printf("comm reduction vs BSP:            %.1fx (LSSR %.3f)\n",
		results[0].CommReduction(), results[0].LSSR)
}
